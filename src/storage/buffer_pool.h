// BufferPool: a fixed-frame page cache between the algorithms and the
// PageFile device.
//
// The paper's cost model counts page accesses; a pool splits that count
// into the *logical* accesses the algorithms request and the *physical*
// transfers the device actually serves (IoStats carries both). Frames
// hold private copies of pages; reads are served from a resident frame
// when possible (a hit costs no device traffic), writes dirty the frame
// and reach the device only at flush or eviction.
//
// Pinning. Every access hands out a PageGuard that pins the frame for
// its lifetime; pinned frames are never evicted or written back. When
// all frames are pinned and another page is requested the pool returns
// kResourceExhausted — it never aborts.
//
// Crash-safe write-back order. The crash-recovery discipline (see
// docs/FAULTS.md) relies on write *order*: SHIFT duplicates a block at
// DEST before deleting it at SOURCE, so a crash anywhere in between
// leaves duplicates (repairable) rather than holes (lost records). A
// cache that reordered write-back — or silently combined an old dirty
// version with a newer one that no longer carries some record — would
// destroy that property. The pool therefore keeps dirty frames in a
// *dirty-order list* L and enforces:
//   1. flush always walks L front-to-back; pages reach the device in
//      first-dirtied order, never reordered by address;
//   2. write combining (absorbing a second write to an already-dirty
//      frame) is allowed only while the frame is the *tail* of L —
//      nothing was dirtied after it, so collapsing the two versions
//      cannot commute a later write before an earlier one;
//   3. re-dirtying a dirty frame that is NOT the tail first flushes the
//      prefix of L up to and including that frame (preserving its old
//      version's position in the order), then re-enters it at the tail.
// Under the controls' access patterns rule 3 is rare (a SHIFT chain
// touches each block once), so almost all repeated writes combine; rule
// 2 is what makes the pool safe rather than merely fast.
//
// Content-aware write-back (rules 2' and 3†, PinForRewrite). Rule 3
// treats every out-of-order re-dirty as potentially unsafe because
// MarkDirty cannot see what the write changes. PinForRewrite receives
// the replacement content up front, so the pool can prove two cheaper
// escapes sound:
//   2'. Additive absorption — the new content is a SUPERSET of the
//       frame's pending content (a block page growing under an
//       ascending drain, a SHIFT destination accumulating records).
//       The rewrite is absorbed at the frame's *original* position in
//       L with no flush: a record can only be lost by a write that
//       REMOVES it, and this write removes nothing.
//   3†. Safe relocation — the rewrite removes records, but no
//       later-dirtied frame depends on this frame's pending image.
//       Each dirty frame tracks the keys its flush will remove from
//       the device (removed_keys, conservative removed_unknown when a
//       legacy write hid the content); the pending image that protects
//       such a removal — the duplicate written first — always sits at
//       an EARLIER position in L. If no frame after F lists a removed
//       key that F's pending image still holds, then nothing between
//       F's slot and the tail needs F flushed first, and F simply
//       moves to the tail with its new content — no device traffic.
//       (The classic unsafe chain — a record hopping P→Q→R, where
//       P's pending removal relies on Q's pending image — fails the
//       check: Q still holds the key P removed, so Q takes the rule-3
//       prefix flush instead.)
// Removal writes that fail both tests keep the full rule-3 prefix
// flush, so duplicate-before-delete holds at every crash point.
//
// Write coalescing. Because SHIFT writes blocks of consecutive pages in
// a deliberate direction, entries of L are typically address-adjacent
// in the order they will be flushed; the flush loop detects maximal
// consecutive-address runs (stats().flush_runs) and the AccessTracker
// charges one seek at each run head plus sequential transfers for the
// rest — one arm movement per run instead of per page.
//
// Freed-page bookkeeping. When a macro-block shrinks, its freed tail
// pages must end up empty on the device. MarkFree() enqueues that clear
// through L like any write (so it cannot overtake the writes that moved
// the records out), but the device clear itself is unaccounted RawPage
// bookkeeping, matching the unpooled path.
//
// Thread safety. The pool's bookkeeping structures (resident map, dirty
// list, free list, stats) are guarded by an internal mutex, annotated
// for Clang's -Wthread-safety analysis (see util/thread_annotations.h).
// Frame *contents* are protected by pinning, not by the mutex: a
// PageGuard holder reads or writes its page without taking any lock, so
// concurrent guards to the SAME page still need external serialization
// (in practice: one pool per shard, writers serialized exclusively and
// readers sharing the shard lock; see shard/sharded_dense_file.h and
// docs/CONCURRENCY.md).
//
// Epoch point reads (TryEpochGet). Each frame carries a version counter
// (odd = a live write guard may be mutating the contents outside the
// pool mutex, even = stable), bumped under the mutex when a write guard
// is handed out and again when it releases. TryEpochGet serves a point
// lookup from a resident *stable* frame entirely under the pool's own
// short mutex — never touching the owner's shard lock and never pinning
// — so lookups proceed while a writer runs in the same shard. The
// version check under the mutex is what validates the copy-out: content
// mutations happen either under the mutex (loads, clears, eviction) or
// only while the version is odd (write guards), so an even version
// proves the bytes read cannot be mid-mutation. Only POSITIVE hits are
// answered; absence is never inferred from the cache (a reorganization
// in another page may be moving the key), and callers fall back to the
// locked path (see docs/CONCURRENCY.md for the soundness argument).

#ifndef DSF_STORAGE_BUFFER_POOL_H_
#define DSF_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/record.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dsf {

class BufferPool;
// Metric handles (obs/metrics.h). Forward-declared so storage/ headers
// stay free of obs/ includes: the owner (core layer) resolves the
// handles from its registry and hands the pool raw pointers.
class Counter;
class Histogram;

// RAII pin on a buffer-pool frame. While alive, the frame cannot be
// evicted or written back. Movable, not copyable; unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_), write_(other.write_) {
    other.pool_ = nullptr;
  }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      write_ = other.write_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  const Page& page() const;
  // Mutable access; valid only for guards obtained from PinWrite /
  // PinForOverwrite (the frame is already marked dirty).
  Page* mutable_page();
  Address address() const;
  bool valid() const { return pool_ != nullptr; }
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, int64_t frame, bool write)
      : pool_(pool), frame_(frame), write_(write) {}

  BufferPool* pool_ = nullptr;
  int64_t frame_ = -1;
  // Write guards re-stabilize the frame's version counter on release
  // (see the epoch-read note above).
  bool write_ = false;
};

class BufferPool {
 public:
  enum class Eviction {
    kClock,  // second-chance sweep (default)
    kLru,    // exact least-recently-used
  };

  struct Options {
    int64_t num_frames = 0;
    Eviction eviction = Eviction::kClock;
  };

  struct Stats {
    int64_t hits = 0;            // pins served from a resident frame
    int64_t misses = 0;          // pins that had to take a frame
    int64_t evictions = 0;       // frames reclaimed for another page
    int64_t writebacks = 0;      // dirty frames written to the device
    int64_t write_combines = 0;  // re-dirties absorbed at the tail of L
    int64_t ordered_flushes = 0;  // prefix flushes forced by rule 3
    int64_t additive_absorbs = 0;  // superset rewrites absorbed in place
                                   // at their original L position (rule 2')
    int64_t relocations = 0;  // removal rewrites safely moved to the
                              // tail of L without a flush (rule 3†)
    int64_t flush_runs = 0;      // maximal consecutive-address runs flushed
    int64_t flushed_pages = 0;   // pages written by FlushAll (incl. frees)
    int64_t free_writes = 0;     // freed-page clears applied at flush

    double HitRate() const {
      const int64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
    Stats& operator+=(const Stats& other);
    std::string ToString() const;
  };

  // A snapshot of one frame's metadata, for the invariant auditor and
  // tests (see analysis/auditor.h). Index in the AuditFrames() vector is
  // the frame id; `owner` is the tag passed by the most recent pinner.
  struct FrameInfo {
    Address address = 0;  // 0 = empty frame
    int32_t pins = 0;
    bool dirty = false;
    bool free_write = false;
    int64_t dirty_seq = 0;  // when the frame last went clean -> dirty
    const char* owner = nullptr;
  };

  // The pool caches pages of `file`; frames are sized to the file's page
  // capacity. `options.num_frames` must be >= 1.
  BufferPool(PageFile* file, const Options& options);

  // In debug builds the destructor reports leaked pins (PageGuards that
  // outlive the pool) to the log, with their owner tags.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins `address` for reading; fills the frame from the device on a
  // miss. Errors: OutOfRange, kIoError (miss fill or eviction write-back
  // fault), kResourceExhausted (all frames pinned). `owner` is a static
  // string recorded on the frame for pin-leak diagnostics.
  StatusOr<PageGuard> PinRead(Address address, const char* owner = nullptr)
      DSF_EXCLUDES(mu_);

  // Pins `address` for in-place modification: loads on miss, marks the
  // frame dirty (enforcing the dirty-order rules above).
  StatusOr<PageGuard> PinWrite(Address address, const char* owner = nullptr)
      DSF_EXCLUDES(mu_);

  // Pins `address` for full overwrite: the frame is *not* filled from
  // the device (the caller replaces the whole page), arrives cleared,
  // and is marked dirty. Saves the miss read that PinWrite would pay.
  StatusOr<PageGuard> PinForOverwrite(Address address,
                                      const char* owner = nullptr)
      DSF_EXCLUDES(mu_);

  // Content-aware PinForOverwrite: [begin, end) is the exact sorted
  // record content the caller will place in the page. Knowing the
  // replacement up front lets the pool absorb additive rewrites in
  // place (rule 2') and relocate dependency-free removal rewrites to
  // the tail (rule 3†) instead of forcing the rule-3 prefix flush —
  // see the header note. The returned frame arrives cleared; the
  // caller must fill it with exactly the declared records before
  // releasing the guard.
  StatusOr<PageGuard> PinForRewrite(Address address, const Record* begin,
                                    const Record* end,
                                    const char* owner = nullptr)
      DSF_EXCLUDES(mu_);

  // Epoch point lookup (see the header note): if some resident, stable
  // (even-version, non-free) frame's key range covers `key` AND the page
  // holds it, copies the record into *out and returns true — all under
  // the pool's own mutex, without pinning and without the owner's
  // external lock. Returns false when the lookup cannot be answered
  // positively from the cache (absent, uncovered, or the covering frame
  // has a live write guard); the caller falls back to its locked read
  // path. Charges one logical read only on a hit (the fallback path
  // charges its own). Never touches the device.
  bool TryEpochGet(Key key, Record* out) DSF_EXCLUDES(mu_);

  // Enqueues "this page becomes empty" through the dirty order; the
  // eventual device clear is unaccounted bookkeeping (see header note).
  Status MarkFree(Address address) DSF_EXCLUDES(mu_);

  // Declares `key` never-yet-durable: it was created after the last
  // durability point (e.g. drained from a volatile memtable inside a
  // flush-deferral window), so losing it on a crash is within the
  // recovery contract. Removals of volatile keys impose no write-order
  // constraint — RelocationSafe and the safe-order flush scheduler
  // ignore them. The set clears itself once every dirty frame lands
  // (successful FlushAll = the durability point) or the cache drops.
  void NoteVolatile(Key key) DSF_EXCLUDES(mu_);

  // Writes every dirty frame to the device in dirty-order. On a fault
  // the failed frame and everything after it stay dirty (and keep their
  // order); already-flushed frames are clean. Safe to retry.
  Status FlushAll() DSF_EXCLUDES(mu_);

  // Grows or shrinks the frame count to `new_frames` (>= 1) — the
  // frame-donation primitive behind the self-tuning controller's
  // per-shard rebalancing (tune/controller.h). Growth appends empty
  // frames. Shrink first lands every dirty frame through the safe-order
  // flush (so no crash-safety ordering is bent around the removal) and
  // then drops the tail frames, evicting their clean contents.
  // Preconditions: no live PageGuards (frame contents are accessed
  // without mu_ through guards, and growth may relocate the frame
  // vector) — callers hold the shard writer lock between commands, under
  // which no guard can be live; returns FailedPrecondition otherwise.
  // kIoError from the shrink flush leaves the pool intact at its old
  // size. Epoch readers (TryEpochGet) are safe throughout: they only
  // touch frames under mu_.
  Status Resize(int64_t new_frames) DSF_EXCLUDES(mu_);

  // Drops every frame without writing anything back — the cache-loss
  // half of a crash. Dirty data is lost by design; the caller re-syncs
  // from the device (CheckAndRepair). Requires no outstanding pins.
  void DropAll() DSF_EXCLUDES(mu_);

  // Frame contents if `address` is resident, nullptr otherwise. For
  // validators and tests; unaccounted. The returned page is read outside
  // the pool mutex — callers must be externally serialized vs. writers.
  const Page* PeekFrame(Address address) const DSF_EXCLUDES(mu_);

  // Metadata snapshot of every frame (index = frame id). For the
  // invariant auditor and tests.
  std::vector<FrameInfo> AuditFrames() const DSF_EXCLUDES(mu_);

  // The dirty-order list L as frame ids, front (dirtied earliest) first.
  std::vector<int64_t> DirtyOrderForAudit() const DSF_EXCLUDES(mu_);

  // Number of PageGuards currently alive. The auditor checks this equals
  // the sum of per-frame pin counts (they diverge only via memory
  // corruption, since both move together in Pin*/Unpin).
  int64_t live_guards() const DSF_EXCLUDES(mu_);

  // Human-readable list of frames still pinned, one line per frame with
  // the owner tag of the last pinner; empty string when nothing is
  // pinned. The destructor logs this in debug builds.
  std::string PinLeakReport() const DSF_EXCLUDES(mu_);

  // Corruption hook for auditor tests: swaps the first two entries of
  // the dirty-order list, simulating a write-back reordering bug.
  void ReorderDirtyListForTesting() DSF_EXCLUDES(mu_);

  int64_t num_frames() const DSF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return static_cast<int64_t>(frames_.size());
  }
  int64_t resident_pages() const DSF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return static_cast<int64_t>(resident_.size());
  }
  int64_t dirty_pages() const DSF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return static_cast<int64_t>(dirty_order_.size());
  }

  Stats stats() const DSF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() DSF_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    stats_ = Stats();
  }

  // Attaches live metric handles (any may be null): hit/miss/write-back
  // counters and the flush-run-length histogram — the write-coalescing
  // distribution (1 = an isolated seek). Handles must outlive the pool
  // or be detached by a second call with nulls. Metric updates mirror
  // the internal Stats counters they duplicate.
  void SetMetrics(Counter* hits, Counter* misses, Counter* writebacks,
                  Histogram* flush_run_length) DSF_EXCLUDES(mu_);

 private:
  friend class PageGuard;

  struct Frame {
    explicit Frame(int64_t page_capacity) : page(page_capacity) {}
    Address address = 0;  // 0 = empty frame
    Page page;
    int32_t pins = 0;
    bool dirty = false;
    bool free_write = false;  // dirty content is "page becomes empty"
    bool ref = false;         // CLOCK second-chance bit
    int64_t lru_tick = 0;
    int64_t dirty_seq = 0;    // serial stamped when going clean -> dirty
    const char* owner = nullptr;            // last pinner's tag
    // Epoch-read stability counter (see the header note): odd while a
    // write guard is outstanding, even otherwise. Mutated only under
    // mu_; content mutations outside mu_ happen only while odd.
    int64_t version = 0;
    std::list<int64_t>::iterator dirty_it;  // valid iff dirty
    // Keys this frame's flush will remove from (or change on) the
    // device, accumulated over the dirty lifetime — the dependency
    // record behind rule 3† (see header note). removed_unknown marks a
    // dirty lifetime that went through a content-blind write path
    // (PinWrite / PinForOverwrite), which conservatively blocks
    // relocations past this frame; content-aware paths (PinForRewrite,
    // MarkFree) keep the ledger exact instead. Both reset when the
    // frame goes clean.
    std::vector<Key> removed_keys;
    bool removed_unknown = false;
  };

  // Returns a pinned frame holding `address`; fills from the device iff
  // `load` and the page was not resident.
  StatusOr<int64_t> AcquireFrame(Address address, bool load)
      DSF_REQUIRES(mu_);
  // Picks and reclaims a victim frame (flushing the dirty prefix through
  // it first); kResourceExhausted if every resident frame is pinned.
  StatusOr<int64_t> EvictFrame() DSF_REQUIRES(mu_);
  // Applies the dirty-order rules (combine at tail / prefix-flush).
  Status MarkDirty(int64_t frame) DSF_REQUIRES(mu_);
  // True when no dirty frame ordered after `f` in L lists a removed key
  // that f's pending image still holds — the rule-3† safety condition.
  // Volatile keys are exempt.
  bool RelocationSafe(const Frame& f) const DSF_REQUIRES(mu_);
  // True when flushing `f` at any position loses nothing durable: its
  // ledger is exact and every removed key is volatile.
  bool OrderFree(const Frame& f) const DSF_REQUIRES(mu_);
  // Dirties `frame` ahead of a rewrite whose full replacement content is
  // [begin, end): applies rules 2 / 2' / 3† / 3 to place the frame in L
  // and keeps the removal ledger exact. `was_resident` tells whether the
  // frame held the device image before AcquireFrame.
  Status MarkDirtyWithContent(int64_t frame, bool was_resident,
                              const Record* begin, const Record* end)
      DSF_REQUIRES(mu_);
  // Appends to f.removed_keys every key of f's pending page that the
  // replacement [begin, end) drops or rebinds to a new value. No-op
  // when the frame is already conservatively removed_unknown.
  static void AccumulateRemoved(Frame* f, const Record* begin,
                                const Record* end);
  // Writes one dirty frame to the device and removes it from L.
  Status FlushFrame(int64_t frame) DSF_REQUIRES(mu_);
  // Flushes L front-to-back up to and including `frame`.
  Status FlushPrefixThrough(int64_t frame) DSF_REQUIRES(mu_);
  // Flushes the given frames with pure additions first in address order,
  // then removal frames in L order — crash-safe (see the .cc comment).
  Status FlushFramesInSafeOrder(std::vector<int64_t> to_flush)
      DSF_REQUIRES(mu_);
  // FlushAll's body, for callers already holding mu_ (Resize).
  Status FlushAllLocked() DSF_REQUIRES(mu_);
  void Unpin(int64_t frame, bool write) DSF_EXCLUDES(mu_);
  void Touch(Frame& f) DSF_REQUIRES(mu_);
  // Records a pin; a `write` pin additionally destabilizes the frame's
  // epoch version (odd) until its guard releases.
  void RecordPin(int64_t frame, const char* owner, bool write)
      DSF_REQUIRES(mu_);

  PageFile* file_;
  Options options_;
  // Frame *contents* are protected by pinning, not mu_ (a PageGuard
  // holder reads its page without any lock, so frames_ cannot carry a
  // GUARDED_BY annotation). Frame *metadata* is mutated only under mu_,
  // and the vector itself changes only in Resize — which requires zero
  // live guards, so no unlocked content access can race the relocation.
  std::vector<Frame> frames_;

  mutable Mutex mu_;
  std::vector<int64_t> free_frames_ DSF_GUARDED_BY(mu_);
  std::unordered_map<Address, int64_t> resident_ DSF_GUARDED_BY(mu_);
  // front = dirtied earliest
  std::list<int64_t> dirty_order_ DSF_GUARDED_BY(mu_);
  int64_t clock_hand_ DSF_GUARDED_BY(mu_) = 0;
  int64_t tick_ DSF_GUARDED_BY(mu_) = 0;
  int64_t next_dirty_seq_ DSF_GUARDED_BY(mu_) = 0;
  int64_t live_guards_ DSF_GUARDED_BY(mu_) = 0;
  // Keys created after the last durability point (see NoteVolatile).
  std::unordered_set<Key> volatile_keys_ DSF_GUARDED_BY(mu_);
  Stats stats_ DSF_GUARDED_BY(mu_);
  Counter* m_hits_ DSF_GUARDED_BY(mu_) = nullptr;
  Counter* m_misses_ DSF_GUARDED_BY(mu_) = nullptr;
  Counter* m_writebacks_ DSF_GUARDED_BY(mu_) = nullptr;
  Histogram* m_flush_run_length_ DSF_GUARDED_BY(mu_) = nullptr;
};

}  // namespace dsf

#endif  // DSF_STORAGE_BUFFER_POOL_H_
