// ScopedTempDir: RAII temp-directory hygiene for tests and benches.
//
// Creates a fresh mkdtemp directory under $TMPDIR (falling back to
// /tmp) and removes it — recursively — when the object leaves scope,
// including on early returns and failed ASSERTs (gtest failures unwind
// normally). CI points TMPDIR at a tmpfs so kill-test sweeps and
// backend parity tests never touch a slow disk and never leak files
// into the workspace on a red run.

#ifndef DSF_UTIL_TEMP_DIR_H_
#define DSF_UTIL_TEMP_DIR_H_

#include <string>

namespace dsf {

class ScopedTempDir {
 public:
  // `prefix` becomes part of the directory name (useful when a leaked
  // directory must be attributable to its test). Aborts if the
  // directory cannot be created — a temp dir is test infrastructure,
  // and no caller has a meaningful fallback.
  explicit ScopedTempDir(const std::string& prefix = "dsf");
  ~ScopedTempDir();

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

  // Releases ownership: the directory survives destruction (debugging a
  // failing kill-test run). Returns the path.
  std::string Release();

 private:
  std::string path_;
};

}  // namespace dsf

#endif  // DSF_UTIL_TEMP_DIR_H_
