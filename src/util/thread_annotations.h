// Clang thread-safety annotations and an annotated mutex wrapper.
//
// The locking discipline of the concurrent layers (one mutex per shard in
// ShardedDenseFile, worker-owned counters in ParallelReplayer) is enforced
// at compile time by Clang's -Wthread-safety analysis. Under GCC, or under
// Clang without the capability attributes, every macro expands to nothing
// and dsf::Mutex degrades to a plain std::mutex wrapper with identical
// runtime behavior — the annotations are a zero-cost contract.
//
// libstdc++'s std::mutex carries no capability attributes, so analyzable
// code must hold its lock through dsf::Mutex / dsf::MutexLock below (this
// is also what the project linter's no-naked-mutex rule checks; see
// scripts/run_static_analysis.sh). The DSF_ANALYZE CMake mode turns the
// analysis on as an error: a GUARDED_BY field touched without its mutex,
// or a REQUIRES function called without the capability, fails the build.

#ifndef DSF_UTIL_THREAD_ANNOTATIONS_H_
#define DSF_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define DSF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DSF_THREAD_ANNOTATION
#define DSF_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// A type that acts as a lock (Clang calls these "capabilities").
#define DSF_CAPABILITY(name) DSF_THREAD_ANNOTATION(capability(name))
// RAII types that acquire on construction and release on destruction.
#define DSF_SCOPED_CAPABILITY DSF_THREAD_ANNOTATION(scoped_lockable)
// Field/variable may only be touched while holding `mu`.
#define DSF_GUARDED_BY(mu) DSF_THREAD_ANNOTATION(guarded_by(mu))
// Pointed-to data (not the pointer itself) is guarded by `mu`.
#define DSF_PT_GUARDED_BY(mu) DSF_THREAD_ANNOTATION(pt_guarded_by(mu))
// Function requires the capability held on entry (and does not release).
#define DSF_REQUIRES(...) \
  DSF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Function must NOT be called with the capability held (deadlock guard).
#define DSF_EXCLUDES(...) DSF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Function acquires / releases the capability.
#define DSF_ACQUIRE(...) \
  DSF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DSF_RELEASE(...) \
  DSF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DSF_TRY_ACQUIRE(...) \
  DSF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Returns a reference to the capability guarding this object.
#define DSF_RETURN_CAPABILITY(x) DSF_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: the function's locking cannot be expressed statically.
#define DSF_NO_THREAD_SAFETY_ANALYSIS \
  DSF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dsf {

// std::mutex with capability attributes. Same size and cost; exists only
// because the analysis needs the attribute on the lock type itself.
class DSF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DSF_ACQUIRE() { mu_.lock(); }
  void Unlock() DSF_RELEASE() { mu_.unlock(); }
  bool TryLock() DSF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// std::lock_guard over dsf::Mutex, visible to the analysis.
class DSF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DSF_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DSF_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace dsf

#endif  // DSF_UTIL_THREAD_ANNOTATIONS_H_
