// Clang thread-safety annotations and an annotated mutex wrapper.
//
// The locking discipline of the concurrent layers (one mutex per shard in
// ShardedDenseFile, worker-owned counters in ParallelReplayer) is enforced
// at compile time by Clang's -Wthread-safety analysis. Under GCC, or under
// Clang without the capability attributes, every macro expands to nothing
// and dsf::Mutex degrades to a plain std::mutex wrapper with identical
// runtime behavior — the annotations are a zero-cost contract.
//
// libstdc++'s std::mutex carries no capability attributes, so analyzable
// code must hold its lock through dsf::Mutex / dsf::MutexLock below (this
// is also what the project linter's no-naked-mutex rule checks; see
// scripts/run_static_analysis.sh). The DSF_ANALYZE CMake mode turns the
// analysis on as an error: a GUARDED_BY field touched without its mutex,
// or a REQUIRES function called without the capability, fails the build.

#ifndef DSF_UTIL_THREAD_ANNOTATIONS_H_
#define DSF_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/deadlock.h"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define DSF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DSF_THREAD_ANNOTATION
#define DSF_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// A type that acts as a lock (Clang calls these "capabilities").
#define DSF_CAPABILITY(name) DSF_THREAD_ANNOTATION(capability(name))
// RAII types that acquire on construction and release on destruction.
#define DSF_SCOPED_CAPABILITY DSF_THREAD_ANNOTATION(scoped_lockable)
// Field/variable may only be touched while holding `mu`.
#define DSF_GUARDED_BY(mu) DSF_THREAD_ANNOTATION(guarded_by(mu))
// Pointed-to data (not the pointer itself) is guarded by `mu`.
#define DSF_PT_GUARDED_BY(mu) DSF_THREAD_ANNOTATION(pt_guarded_by(mu))
// Function requires the capability held on entry (and does not release).
#define DSF_REQUIRES(...) \
  DSF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Function must NOT be called with the capability held (deadlock guard).
#define DSF_EXCLUDES(...) DSF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Function acquires / releases the capability.
#define DSF_ACQUIRE(...) \
  DSF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DSF_RELEASE(...) \
  DSF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DSF_TRY_ACQUIRE(...) \
  DSF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Shared (reader) forms of the acquire/release/try annotations.
#define DSF_ACQUIRE_SHARED(...) \
  DSF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define DSF_RELEASE_SHARED(...) \
  DSF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define DSF_TRY_ACQUIRE_SHARED(...) \
  DSF_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
// Returns a reference to the capability guarding this object.
#define DSF_RETURN_CAPABILITY(x) DSF_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: the function's locking cannot be expressed statically.
#define DSF_NO_THREAD_SAFETY_ANALYSIS \
  DSF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dsf {

// std::mutex with capability attributes. Same size and cost; exists only
// because the analysis needs the attribute on the lock type itself.
// Both lock types report acquisitions to the runtime lock-order detector
// (util/deadlock.h) when it is enabled: one relaxed load and a predicted
// branch per operation otherwise. NoteAcquire runs *before* blocking so
// an actual deadlock is still diagnosed, and TryLock reports only on
// success (a failed try holds nothing and orders nothing).
class DSF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() { deadlock::NoteDestroy(this); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DSF_ACQUIRE() {
    deadlock::NoteAcquire(this);
    mu_.lock();
  }
  void Unlock() DSF_RELEASE() {
    deadlock::NoteRelease(this);
    mu_.unlock();
  }
  bool TryLock() DSF_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    deadlock::NoteAcquire(this);
    return true;
  }

 private:
  std::mutex mu_;
};

// std::lock_guard over dsf::Mutex, visible to the analysis.
class DSF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DSF_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DSF_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Reader-preference reader-writer lock with capability attributes: many
// readers or one writer. Exclusive acquisition mirrors Mutex
// (Lock/Unlock/TryLock); readers take the shared side
// (ReaderLock/ReaderUnlock/ReaderTryLock).
//
// NOT std::shared_mutex, whose admission dynamics measured badly on
// read-mostly device-resident shards (bench/shard_scaling --mode=rwlock:
// ~1.6x read scaling at 8 threads where pure readers scale ~8x). This
// lock batches: a waiting writer gates NEW readers, drains the in-flight
// ones (bounded by one command's shared hold), takes its exclusive turn,
// and on release wakes the entire queued reader batch together — so a
// write stream costs one drain-plus-hold window per write, not a
// per-reader admission collapse, and between writer turns readers are
// admitted continuously. Reader-preference (admit readers whenever no
// writer *holds*) was tried and measured no better: a writer then needs
// a spontaneous all-readers-idle instant to enter, which an 8-thread
// read stream essentially never produces, and the clients convoy behind
// their own stalled writes. Writers queue FIFO-ish via notify_one;
// sustained write floods can starve readers, which a 90/10 shard never
// sees — and each blocked reader is a client thread that stopped
// feeding the flood.
class DSF_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  ~SharedMutex() { deadlock::NoteDestroy(this); }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() DSF_ACQUIRE() {
    // Shared and exclusive holds report to the same detector node:
    // readers block behind waiting writers here, so reader acquisitions
    // participate in deadlock cycles like any exclusive hold.
    deadlock::NoteAcquire(this);
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_writers_;
    writer_cv_.wait(lock,
                    [this] { return !writer_active_ && readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
  }
  void Unlock() DSF_RELEASE() {
    deadlock::NoteRelease(this);
    bool more_writers = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      writer_active_ = false;
      more_writers = waiting_writers_ != 0;
    }
    if (more_writers) {
      // Hand off to the next queued writer; gated readers keep waiting
      // and will be released as one batch after the last writer leaves.
      writer_cv_.notify_one();
    } else {
      readers_cv_.notify_all();
    }
  }
  bool TryLock() DSF_TRY_ACQUIRE(true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (writer_active_ || readers_ != 0) return false;
      writer_active_ = true;
    }
    deadlock::NoteAcquire(this);
    return true;
  }

  void ReaderLock() DSF_ACQUIRE_SHARED() {
    deadlock::NoteAcquire(this);
    std::unique_lock<std::mutex> lock(mu_);
    readers_cv_.wait(
        lock, [this] { return !writer_active_ && waiting_writers_ == 0; });
    ++readers_;
  }
  void ReaderUnlock() DSF_RELEASE_SHARED() {
    deadlock::NoteRelease(this);
    bool wake_writer = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      wake_writer = --readers_ == 0 && waiting_writers_ != 0;
    }
    if (wake_writer) writer_cv_.notify_one();
  }
  bool ReaderTryLock() DSF_TRY_ACQUIRE_SHARED(true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (writer_active_ || waiting_writers_ != 0) return false;
      ++readers_;
    }
    deadlock::NoteAcquire(this);
    return true;
  }

 private:
  std::mutex mu_;
  std::condition_variable readers_cv_;
  std::condition_variable writer_cv_;
  int64_t readers_ = 0;
  int64_t waiting_writers_ = 0;
  bool writer_active_ = false;
};

// Scoped exclusive hold of a SharedMutex (the writer side).
class DSF_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) DSF_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() DSF_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Scoped shared hold of a SharedMutex (the reader side).
class DSF_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) DSF_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() DSF_RELEASE_SHARED() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace dsf

#endif  // DSF_UTIL_THREAD_ANNOTATIONS_H_
