#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace dsf {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  // xoshiro256**
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  DSF_CHECK(bound > 0) << "Uniform bound must be positive";
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  DSF_CHECK(lo <= hi) << "UniformInRange: lo > hi";
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n) {
  DSF_CHECK(n >= 1) << "ZipfGenerator needs n >= 1";
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // First index with cdf >= u.
  uint64_t lo = 0;
  uint64_t hi = n_ - 1;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace dsf
