#include "util/deadlock.h"

#include <algorithm>
#include <cstdio>
#include <mutex>  // lint:allow(no-naked-mutex): the detector's own state
                  // lock must be invisible to the detector (a dsf::Mutex
                  // here would recurse into its own hooks).
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace dsf {
namespace deadlock {

std::string LockOrderViolation::ToString() const {
  std::string out = "lock-order cycle:";
  for (size_t i = 0; i < cycle.size(); ++i) {
    out += (i == 0 ? " " : " -> ");
    out += names[i];
  }
  if (!cycle.empty()) out += " -> " + names[0];
  return out;
}

std::string LockOrderReport::ToString() const {
  if (ok()) return "lock order clean";
  std::string out = "lock-order violations: " +
                    std::to_string(violation_count) + "\n";
  for (const LockOrderViolation& v : violations) {
    out += "  " + v.ToString() + "\n";
  }
  return out;
}

namespace internal {

std::atomic<bool> g_enabled{
#ifdef DSF_DEADLOCK_DETECT_DEFAULT_ON
    true
#else
    false
#endif
};
std::atomic<bool> g_ever_enabled{g_enabled.load()};

namespace {

constexpr size_t kMaxViolations = 16;
// Thread-local cache of edges already known to be in the global graph;
// the hot nested pattern (shard mutex -> pool mutex, once per command)
// hits here and skips the global mutex entirely. Small on purpose: it
// is scanned linearly per held lock on every nested acquisition, and a
// thread's working set of distinct edges is a handful.
constexpr size_t kEdgeCacheSize = 16;
// Deepest tracked per-thread hold stack. MultiShardLock over every
// shard plus a pool and a tracer hold stays well inside this; holds
// acquired beyond the cap are not tracked (their releases fall through
// the stack scan harmlessly).
constexpr int kMaxHeld = 64;

// Guards the graph, names and violations. A plain std::mutex: the
// detector must not observe its own locking.
std::mutex g_mu;

struct GlobalState {
  // Adjacency: a -> b  <=>  some thread acquired b while holding a.
  // Invariant: acyclic (a closing edge is reported, not inserted).
  std::unordered_map<const void*, std::vector<const void*>> edges;
  std::unordered_map<const void*, std::string> names;
  // Edges already reported, so one ordering bug yields one violation.
  std::unordered_set<uint64_t> reported;
  std::vector<LockOrderViolation> violations;
  int64_t violation_count = 0;
  // Bumped by Enable(true); invalidates every thread's edge cache.
  std::atomic<uint64_t> epoch{1};
};

GlobalState& State() {
  static GlobalState* state = new GlobalState();  // leaked: outlives TLS
  return *state;
}

// Plain aggregate of pointers and integers so the thread_local below is
// constant-initialized: the fast path (empty held stack — leaf locks
// like the metrics registry and the tracer ring) is then a TLS offset
// load with no init guard and no allocation, which is what keeps the
// detector inside its 5% overhead gate (BM_DeadlockDetectOverhead).
struct ThreadState {
  const void* held[kMaxHeld];
  int held_count;
  // (from, to) pairs confirmed present in the global graph.
  std::pair<const void*, const void*> edge_cache[kEdgeCacheSize];
  size_t edge_cache_next;
  uint64_t epoch;
};

constinit thread_local ThreadState tls_state{};

uint64_t EdgeKey(const void* from, const void* to) {
  // Splittable mix of the two addresses; collisions in `reported` only
  // risk suppressing a second distinct violation, never a false report.
  uint64_t a = reinterpret_cast<uintptr_t>(from);
  uint64_t b = reinterpret_cast<uintptr_t>(to);
  a ^= a >> 33;
  a *= 0xff51afd7ed558ccdULL;
  return a ^ (b * 0xc4ceb9fe1a85ec53ULL);
}

std::string NameOf(const GlobalState& state, const void* lock) {
  auto it = state.names.find(lock);
  if (it != state.names.end()) return it->second;
  char buf[32];
  std::snprintf(buf, sizeof buf, "lock@%p", lock);
  return buf;
}

// DFS: is `target` reachable from `from` in the edge graph?  Fills
// `path` with the node chain from -> ... -> target when found.
bool FindPath(const GlobalState& state, const void* from, const void* target,
              std::unordered_set<const void*>* visited,
              std::vector<const void*>* path) {
  if (!visited->insert(from).second) return false;
  path->push_back(from);
  if (from == target) return true;
  auto it = state.edges.find(from);
  if (it != state.edges.end()) {
    for (const void* next : it->second) {
      if (FindPath(state, next, target, visited, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

// Inserts edge held -> acquired, reporting (and not inserting) any edge
// that would close a cycle. Caller holds g_mu.
void AddEdgeLocked(GlobalState& state, const void* held,
                   const void* acquired) {
  std::vector<const void*>& out = state.edges[held];
  if (std::find(out.begin(), out.end(), acquired) != out.end()) return;
  // Would acquired ->* held?  Then held -> acquired closes a cycle.
  std::unordered_set<const void*> visited;
  std::vector<const void*> path;
  if (FindPath(state, acquired, held, &visited, &path)) {
    if (state.reported.insert(EdgeKey(held, acquired)).second) {
      ++state.violation_count;
      if (state.violations.size() < kMaxViolations) {
        LockOrderViolation v;
        v.cycle = std::move(path);  // acquired -> ... -> held
        for (const void* lock : v.cycle) {
          v.names.push_back(NameOf(state, lock));
        }
        state.violations.push_back(std::move(v));
      }
    }
    return;
  }
  out.push_back(acquired);
}

}  // namespace

void OnAcquire(const void* lock) {
  ThreadState& tls = tls_state;
  if (tls.held_count > 0) {
    GlobalState& state = State();
    const uint64_t epoch = state.epoch.load(std::memory_order_acquire);
    if (tls.epoch != epoch) {
      // Enable(true) reset the graph; cached edges are stale.
      for (auto& e : tls.edge_cache) e = {nullptr, nullptr};
      tls.epoch = epoch;
    }
    for (int i = 0; i < tls.held_count; ++i) {
      const std::pair<const void*, const void*> edge(tls.held[i], lock);
      bool cached = false;
      for (const auto& e : tls.edge_cache) {
        if (e == edge) {
          cached = true;
          break;
        }
      }
      if (cached) continue;
      {
        std::lock_guard<std::mutex> g(g_mu);
        AddEdgeLocked(state, tls.held[i], lock);
      }
      tls.edge_cache[tls.edge_cache_next] = edge;
      tls.edge_cache_next = (tls.edge_cache_next + 1) % kEdgeCacheSize;
    }
  }
  if (tls.held_count < kMaxHeld) tls.held[tls.held_count++] = lock;
  // Past the cap the hold is simply not tracked; see kMaxHeld.
}

void OnRelease(const void* lock) {
  ThreadState& tls = tls_state;
  // Almost always the top of the stack; search back-to-front for the
  // general case (MultiShardLock releases in descending order).
  for (int i = tls.held_count - 1; i >= 0; --i) {
    if (tls.held[i] == lock) {
      for (int j = i; j < tls.held_count - 1; ++j) {
        tls.held[j] = tls.held[j + 1];
      }
      --tls.held_count;
      return;
    }
  }
  // Released a lock acquired before Enable(true) (or past the cap):
  // ignore.
}

void OnDestroy(const void* lock) {
  GlobalState& state = State();
  std::lock_guard<std::mutex> g(g_mu);
  state.edges.erase(lock);
  for (auto& [from, out] : state.edges) {
    (void)from;
    out.erase(std::remove(out.begin(), out.end(), lock), out.end());
  }
  state.names.erase(lock);
  // A destroyed address may be recycled by a new lock; cached edges
  // naming it must not survive. Bump the epoch to flush all caches.
  state.epoch.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace internal

void Enable(bool on) {
  using internal::State;
  internal::GlobalState& state = State();
  std::lock_guard<std::mutex> g(internal::g_mu);
  if (on) {
    state.edges.clear();
    state.names.clear();
    state.reported.clear();
    state.violations.clear();
    state.violation_count = 0;
    state.epoch.fetch_add(1, std::memory_order_acq_rel);
    internal::g_ever_enabled.store(true, std::memory_order_relaxed);
  }
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

void RegisterName(const void* lock, const std::string& name) {
  if (!Enabled()) return;
  internal::GlobalState& state = internal::State();
  std::lock_guard<std::mutex> g(internal::g_mu);
  state.names[lock] = name;
}

LockOrderReport Report() {
  internal::GlobalState& state = internal::State();
  LockOrderReport report;
  std::lock_guard<std::mutex> g(internal::g_mu);
  report.violations = state.violations;
  report.violation_count = state.violation_count;
  return report;
}

}  // namespace deadlock
}  // namespace dsf
