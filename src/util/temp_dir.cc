#include "util/temp_dir.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace dsf {
namespace {

// Depth-first removal; symlinks are unlinked, not followed (the
// directory only ever holds files this process created, but a test that
// plants a stray symlink must not let it escape).
void RemoveTree(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    ::unlink(path.c_str());
    return;
  }
  std::vector<std::string> entries;
  while (struct dirent* e = ::readdir(dir)) {
    if (std::strcmp(e->d_name, ".") == 0 || std::strcmp(e->d_name, "..") == 0) {
      continue;
    }
    entries.push_back(path + "/" + e->d_name);
  }
  ::closedir(dir);
  for (const std::string& entry : entries) {
    struct stat st;
    if (::lstat(entry.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      RemoveTree(entry);
    } else {
      ::unlink(entry.c_str());
    }
  }
  ::rmdir(path.c_str());
}

}  // namespace

ScopedTempDir::ScopedTempDir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  if (base == nullptr || base[0] == '\0') base = "/tmp";
  std::string tmpl = std::string(base) + "/" + prefix + ".XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  DSF_CHECK(::mkdtemp(buf.data()) != nullptr)
      << "mkdtemp failed for " << tmpl << ": " << std::strerror(errno);
  path_.assign(buf.data());
}

ScopedTempDir::~ScopedTempDir() {
  if (!path_.empty()) RemoveTree(path_);
}

std::string ScopedTempDir::Release() {
  std::string p = std::move(path_);
  path_.clear();
  return p;
}

}  // namespace dsf
