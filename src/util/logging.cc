#include "util/logging.h"

#include <iostream>

namespace dsf {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(g_level)) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << "\n";
}

}  // namespace internal_log
}  // namespace dsf
