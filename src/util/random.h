// Deterministic pseudo-random number generation for workloads and tests.
//
// Rng wraps SplitMix64/xoshiro-style generation with convenience draws;
// ZipfGenerator produces skewed key choices for hotspot workloads. Both are
// fully deterministic given the seed so experiments are reproducible.

#ifndef DSF_UTIL_RANDOM_H_
#define DSF_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace dsf {

// A small, fast, seedable PRNG (xoshiro256** seeded via SplitMix64).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t Next();

  // Uniform in [0, bound), bound > 0. Uses rejection to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  // Uniform in [lo, hi] inclusive, lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  // Uniform real in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
};

// Samples ranks in [0, n) with P(rank k) proportional to 1/(k+1)^theta.
// Precomputes the CDF once; each Sample() is a binary search.
class ZipfGenerator {
 public:
  // n >= 1; theta >= 0 (theta == 0 is uniform).
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace dsf

#endif  // DSF_UTIL_RANDOM_H_
