// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding the durable on-disk page format (storage/file_backend).
//
// The Castagnoli polynomial is the storage-industry choice (iSCSI, ext4,
// Btrfs, LevelDB/RocksDB block format) because its error-detection
// properties at 4KB block sizes beat CRC32's, and hardware assists exist
// on most ISAs. This implementation is the portable slice-by-one table
// form: at the sizes the backend checksums (a superblock header and
// <= page-capacity records per slot) the table walk is nanoseconds next
// to the pwrite it guards, so no SIMD/ISA dispatch is warranted.
//
// Masking: values are stored on disk unmasked. The format never
// checksums a buffer that itself embeds this CRC (the slot header's crc
// field is excluded from its own coverage), so RocksDB-style masking is
// unnecessary.

#ifndef DSF_UTIL_CRC32C_H_
#define DSF_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dsf {

// Extends `crc` (0 for a fresh computation) over `data[0, n)`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace dsf

#endif  // DSF_UTIL_CRC32C_H_
