// Status and StatusOr: the library's error-handling model.
//
// libdsf does not use C++ exceptions. Every fallible operation returns a
// Status (or a StatusOr<T> when it also produces a value). The design
// follows the conventions of Arrow / RocksDB / Abseil status types.

#ifndef DSF_UTIL_STATUS_H_
#define DSF_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/check.h"

namespace dsf {

// Canonical error space for libdsf operations.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed a value outside the contract
  kNotFound = 2,          // key not present
  kAlreadyExists = 3,     // key already present
  kCapacityExceeded = 4,  // file already holds N = d*M records
  kOutOfRange = 5,        // address outside [1, M] or similar
  kFailedPrecondition = 6,  // object state does not permit the call
  kCorruption = 7,          // an internal invariant was found broken
  kInternal = 8,            // unexpected algorithmic state
  kIoError = 9,             // a page access failed (injected or device fault)
  kResourceExhausted = 10,  // a bounded resource (e.g. buffer-pool frames)
                            // is fully in use and none can be reclaimed
};

// Returns the canonical spelling of `code` ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

// A Status is either OK (the common, cheap case) or an error code with a
// human-readable message. Copyable and movable; OK carries no allocation.
//
// The class itself is [[nodiscard]]: any function returning a Status by
// value warns (and fails the DSF_ANALYZE build) when the caller drops the
// result. The rare genuine don't-care sites say so explicitly with
// IgnoreStatus() below.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCapacityExceeded() const {
    return code_ == StatusCode::kCapacityExceeded;
  }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// StatusOr<T> holds either a T or a non-OK Status. Access to the value of
// a non-OK StatusOr aborts the process (there are no exceptions to throw).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit, so `return value;` and `return status;` both
  // work inside functions returning StatusOr<T>.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    DSF_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DSF_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    DSF_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DSF_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Explicitly discards a Status (or StatusOr) at a genuine don't-care
// site: best-effort cleanup, a sweep whose outcome is checked elsewhere,
// an error already recorded through another channel. Grep-able, unlike a
// bare (void) cast, so the static-analysis linter can audit every site.
inline void IgnoreStatus(const Status& status) { (void)status; }
template <typename T>
void IgnoreStatus(const StatusOr<T>& status_or) {
  (void)status_or;
}

// Propagates a non-OK status out of the current function.
#define DSF_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::dsf::Status _dsf_status = (expr);          \
    if (!_dsf_status.ok()) return _dsf_status;   \
  } while (false)

}  // namespace dsf

#endif  // DSF_UTIL_STATUS_H_
