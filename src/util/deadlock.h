// Runtime lock-order (deadlock) detection for dsf::Mutex / dsf::SharedMutex.
//
// The static half of the locking gate — Clang's -Wthread-safety build and
// dsflint's lock-order rule (tools/dsflint/) — proves each *source
// pattern* consistent with the declared hierarchy. This module checks the
// *executions*: every acquisition made while other dsf locks are held
// records a directed edge (held -> acquired) in a global lock graph, in
// the spirit of abseil's deadlock graph, and a cycle in that graph is a
// witness that two code paths acquire the same locks in opposite orders —
// a latent deadlock even if the schedules observed so far never hung.
//
// Protocol (docs/ANALYSIS.md "Runtime lock-order detection"):
//  - Each thread keeps a stack of the dsf locks it currently holds
//    (shared holds included: our SharedMutex blocks readers behind
//    waiting writers, so reader acquisitions participate in cycles).
//  - Acquiring lock B while holding A inserts edge A -> B *before*
//    blocking, so an actual deadlock is still diagnosed.
//  - Edges are per lock *instance*: the per-shard mutexes acquired in
//    ascending index order by MultiShardLock form a chain, not a cycle;
//    any pair of instances ever taken in both orders forms a 2-cycle and
//    is reported.
//  - A detected cycle is recorded as a LockOrderReport::Violation (the
//    offending edge is NOT added, so the graph stays acyclic and each
//    ordering bug is reported once, not per occurrence). Detection never
//    aborts; tests assert on the report (tests/deadlock_test.cc, the
//    TSan storm configs in tests/sharded_file_test.cc).
//
// Cost: disabled (the default), each Lock/Unlock pays one relaxed atomic
// load and a predicted branch. Enabled, an acquisition with an empty held
// stack (the overwhelmingly common case — leaf locks like the metrics
// registry) touches only thread-local state; nested acquisitions consult
// a small thread-local edge cache before falling back to the global
// graph mutex. The overhead gate is BM_DeadlockDetectOverhead
// (bench/gbench_core.cc): < 5% throughput delta on the pooled+traced
// command path, BM_MetricsOverhead-style.
//
// Enable per process with dsf::deadlock::Enable(true) (tests), or build
// with -DDSF_DEADLOCK_DETECT=ON (CMake option; defaults ON when
// DSF_SANITIZE=thread so the TSan storms always run under the detector).

#ifndef DSF_UTIL_DEADLOCK_H_
#define DSF_UTIL_DEADLOCK_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dsf {
namespace deadlock {

// A lock-order violation: the cycle the rejected edge would have closed.
// `cycle` lists the lock instances in acquisition order; cycle[0] is the
// lock being acquired and cycle.back() is a lock already held by the
// acquiring thread with an edge back to cycle[0] — i.e. the path
// cycle[0] -> cycle[1] -> ... -> cycle.back() -> cycle[0] exists.
struct LockOrderViolation {
  std::vector<const void*> cycle;
  // RegisterName() names when known, "lock@0x..." otherwise; parallel to
  // `cycle`.
  std::vector<std::string> names;

  std::string ToString() const;
};

// Snapshot of every violation observed since Enable(true) (bounded; see
// kMaxViolations in deadlock.cc).
struct LockOrderReport {
  std::vector<LockOrderViolation> violations;
  // Total violations detected, including any dropped past the bound.
  int64_t violation_count = 0;

  bool ok() const { return violation_count == 0; }
  std::string ToString() const;
};

namespace internal {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_ever_enabled;

// Out-of-line slow paths; call only when Enabled() (OnDestroy: when
// EverEnabled()).
void OnAcquire(const void* lock);
void OnRelease(const void* lock);
void OnDestroy(const void* lock);
}  // namespace internal

// The fast-path gate, inlined into every Lock/Unlock.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline bool EverEnabled() {
  return internal::g_ever_enabled.load(std::memory_order_relaxed);
}

// Turns detection on (clearing all prior graph state, names and
// violations) or off. Enable while no dsf locks are held anywhere:
// holds taken before Enable(true) are invisible, so their releases are
// ignored, but edges recorded mid-hold would be incomplete.
void Enable(bool on);

// Associates a diagnostic name with a lock instance for reports.
// Optional; unnamed locks report as "lock@0x...". No-op while disabled.
void RegisterName(const void* lock, const std::string& name);

// The violations observed since the last Enable(true).
LockOrderReport Report();

// Hooks for the annotated lock types (util/thread_annotations.h).
inline void NoteAcquire(const void* lock) {
  if (Enabled()) internal::OnAcquire(lock);
}
inline void NoteRelease(const void* lock) {
  if (Enabled()) internal::OnRelease(lock);
}
inline void NoteDestroy(const void* lock) {
  if (EverEnabled()) internal::OnDestroy(lock);
}

}  // namespace deadlock
}  // namespace dsf

#endif  // DSF_UTIL_DEADLOCK_H_
