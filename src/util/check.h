// Fatal assertion macros.
//
// DSF_CHECK is always on; DSF_DCHECK compiles away in NDEBUG builds.
// Both support a streamed trailing message: DSF_CHECK(x > 0) << "got " << x;
// On failure the condition, location and message are printed to stderr and
// the process aborts. These guard internal invariants only; user-facing
// errors are reported through Status.

#ifndef DSF_UTIL_CHECK_H_
#define DSF_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dsf {
namespace internal_check {

// Accumulates the streamed message and aborts in the destructor.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "DSF_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Makes the ternary in DSF_CHECK type-check: `Voidify() & stream` has type
// void, matching the `(void)0` of the passing branch.
class Voidify {
 public:
  // const& binds both the bare temporary stream and the lvalue returned
  // by a chained operator<<.
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal_check
}  // namespace dsf

#define DSF_CHECK(cond)                                \
  (cond) ? (void)0                                     \
         : ::dsf::internal_check::Voidify() &          \
               ::dsf::internal_check::CheckFailureStream(#cond, __FILE__, \
                                                         __LINE__)

#ifdef NDEBUG
#define DSF_DCHECK(cond) DSF_CHECK(true)
#else
#define DSF_DCHECK(cond) DSF_CHECK(cond)
#endif

#endif  // DSF_UTIL_CHECK_H_
