#include "util/crc32c.h"

#include <array>

namespace dsf {
namespace {

// Table for the reflected Castagnoli polynomial, built once at first use
// (constant-initialized would need C++20 constexpr std::array loops that
// some toolchains still compile slowly; a function-local static is one
// branch per call after the first).
const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::array<uint32_t, 256>& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace dsf
