// Minimal leveled logging to stderr.
//
// DSF_LOG(kInfo) << "loaded " << n << " records";
// The global level defaults to kWarning so library internals stay quiet;
// benches and examples raise it explicitly.

#ifndef DSF_UTIL_LOGGING_H_
#define DSF_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dsf {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Process-wide minimum level actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace dsf

#define DSF_LOG(level)                                        \
  ::dsf::internal_log::LogMessage(::dsf::LogLevel::level,     \
                                  __FILE__, __LINE__)

#endif  // DSF_UTIL_LOGGING_H_
