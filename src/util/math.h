// Small integer-math helpers used throughout the density machinery.
//
// All density-threshold comparisons in libdsf are done in exact integer
// arithmetic (see core/density.h); these helpers keep that code readable.

#ifndef DSF_UTIL_MATH_H_
#define DSF_UTIL_MATH_H_

#include <cstdint>

#include "util/check.h"

namespace dsf {

// ceil(log2(x)) for x >= 1. CeilLog2(1) == 0.
inline int64_t CeilLog2(int64_t x) {
  DSF_CHECK(x >= 1) << "CeilLog2 domain";
  int64_t log = 0;
  int64_t value = 1;
  while (value < x) {
    value <<= 1;
    ++log;
  }
  return log;
}

// floor(log2(x)) for x >= 1.
inline int64_t FloorLog2(int64_t x) {
  DSF_CHECK(x >= 1) << "FloorLog2 domain";
  int64_t log = 0;
  while (x > 1) {
    x >>= 1;
    ++log;
  }
  return log;
}

// ceil(a / b) for a >= 0, b > 0.
inline int64_t DivCeil(int64_t a, int64_t b) {
  DSF_CHECK(a >= 0 && b > 0) << "DivCeil domain";
  return (a + b - 1) / b;
}

// True iff x is a power of two (x >= 1).
inline bool IsPowerOfTwo(int64_t x) { return x >= 1 && (x & (x - 1)) == 0; }

}  // namespace dsf

#endif  // DSF_UTIL_MATH_H_
