// Structural invariant auditor — the runtime half of the analysis
// pipeline (docs/ANALYSIS.md).
//
// The correctness argument of Willard's CONTROL 2 rests on invariants the
// type system never sees: BALANCE(d,D) (Theorem 5.5), the calibrator's
// N_v rank counters agreeing with physical page occupancy (Section 3),
// Fact 5.1's WARNING-flag consistency, DEST pointers confined to
// RANGE(father), and — below the algorithms — the buffer pool's
// first-dirtied write-back order that crash recovery depends on
// (docs/FAULTS.md, docs/CACHING.md). The auditor re-derives every one of
// them from ground truth: a physical walk over the logical page view,
// never trusting a counter it can recompute. ValidateInvariants() answers
// "is the file sane?" with the first failure; Audit() answers "what
// exactly is broken, where?" with a typed report of every violation —
// the contract the negative tests in tests/auditor_test.cc pin down.
//
// Entry points: DenseFile::Audit() / ShardedDenseFile::Audit() (which add
// shard stamping and boundary checks), or the static Auditor functions
// below for direct use against a ControlBase or BufferPool. Audits are
// unaccounted (zero page-access charges) and read-only. O(M + log-tree)
// time; meant for tests, post-repair certification and the
// Options::audit_every_command hook, not steady-state production calls.

#ifndef DSF_ANALYSIS_AUDITOR_H_
#define DSF_ANALYSIS_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class BufferPool;
class ControlBase;
class Memtable;

// Every distinct way the audited structures can be wrong. One enumerator
// per check so a test seeding a specific corruption can assert the exact
// diagnosis (see docs/ANALYSIS.md for the catalog with paper refs).
enum class AuditViolationKind {
  // --- file structure (paper Section 2: (d,D)-density) ---
  kCapacityExceeded,      // N > d*M records in total
  kPageOverflow,          // a page holds more than D records
  kPageMalformed,         // records within a page not strictly ascending
  kGlobalOrderViolation,  // key order broken across page addresses
  kBlockNotPrefixPacked,  // macro-block content not in a page prefix
  // --- calibrator (Section 3) ---
  kRankCounterStale,   // leaf N_v != records physically in the block
  kFenceKeysStale,     // leaf min/max fences != physical min/max
  kAggregateMismatch,  // internal node != aggregate of its children
  // --- BALANCE(d,D) (Theorem 5.5), from physical counts ---
  kBalanceViolation,  // p(v) > g(v,1) for some calibrator node
  // --- CONTROL 2 flag/pointer state (Section 4, Fact 5.1) ---
  kWarningStale,          // flag up but p(v) <= g(v,1/3)  (Fact 5.1a)
  kWarningMissing,        // flag down but p(v) >= g(v,2/3) (Fact 5.1b)
  kRootWarning,           // the root never warns
  kDestOutOfRange,        // DEST(v) outside RANGE(father(v))
  kSelectAggregateStale,  // SELECT's subtree aggregates != flags
  // --- buffer pool (PR 3's write-back discipline) ---
  kDirtyOrderViolation,       // list L not in first-dirtied order
  kDirtyListCorrupt,          // L and per-frame dirty bits disagree
  kFrameAliasing,             // two frames cache the same page
  kFrameDirectoryMismatch,    // resident map != frame contents
  kPinAccountingMismatch,     // sum of pins != live PageGuards
  kPinnedFrameAtQuiescence,   // pins outstanding between commands
  // --- sharding ---
  kShardBoundaryViolation,  // a shard holds keys outside its range
  // --- ingest staging (src/ingest/memtable.h kind invariants) ---
  kStagingOrderViolation,   // memtable keys not strictly ascending, or
                            // per-kind counts out of sync
  kStagingOverCapacity,     // staged entries exceed the configured budget
  kStagingDuplicateOfFile,  // a staged kInsert key is already durable
  kStagingTombstoneOrphan,  // a kUpdate/kTombstone key missing from file
};

const char* AuditViolationKindToString(AuditViolationKind kind);

// One pinpointed defect. Location fields default to "not applicable";
// `expected` / `found` carry the two sides of the failed comparison when
// the check is numeric, `detail` the human-readable specifics.
struct AuditViolation {
  AuditViolationKind kind;
  int shard = -1;     // shard index (sharded audits only)
  Address page = 0;   // physical page address, 0 = n/a
  Address block = 0;  // logical block (macro-page) address, 0 = n/a
  int node = -1;      // calibrator node id, -1 = n/a
  int64_t expected = 0;
  int64_t found = 0;
  std::string detail;

  std::string ToString() const;
};

// The audit outcome: every violation found (not just the first), plus
// coverage counters so a "clean" run can prove it actually looked.
struct AuditReport {
  std::vector<AuditViolation> violations;
  int64_t checks_run = 0;    // individual predicate evaluations
  int64_t pages_walked = 0;  // physical pages read during the walk

  bool ok() const { return violations.empty(); }
  bool Has(AuditViolationKind kind) const;
  // First violation of `kind`, or nullptr.
  const AuditViolation* Find(AuditViolationKind kind) const;

  // OK when clean; otherwise Corruption carrying the first violation and
  // the total count. This is what Options::audit_every_command surfaces.
  Status ToStatus() const;
  std::string ToString() const;

  // Folds `other` into this report, stamping its violations (and
  // checks/pages counters) with `shard`.
  void Merge(AuditReport other, int shard);
};

struct AuditOptions {
  // Between commands no PageGuard is live; any outstanding pin is a leak.
  // Set false to audit mid-operation states where pins are legitimate.
  bool expect_quiescent_pool = true;
};

class Auditor {
 public:
  // Audits file structure, calibrator, BALANCE, CONTROL 2 state (when
  // `control` is a Control2) and the attached buffer pool (when any).
  static AuditReport AuditControl(const ControlBase& control,
                                  const AuditOptions& options = {});

  // Pool-only audit: dirty-order list, frame directory, pin accounting.
  static AuditReport AuditPool(const BufferPool& pool,
                               const AuditOptions& options = {});

  // Staging audit (docs/INGEST.md): memtable order/capacity/count sanity
  // plus the entry-kind claims against the durable file — kInsert keys
  // must be absent (disjointness: a drained entry leaves the buffer, so
  // a key may never be staged-as-new *and* durable), kUpdate/kTombstone
  // keys must be present. Membership uses unaccounted PeekContains over
  // the logical view; O(staged entries * block pages).
  static AuditReport AuditStaging(const Memtable& staging,
                                  const ControlBase& control);
};

}  // namespace dsf

#endif  // DSF_ANALYSIS_AUDITOR_H_
