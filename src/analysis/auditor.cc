#include "analysis/auditor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "core/calibrator.h"
#include "core/control2.h"
#include "core/control_base.h"
#include "core/density.h"
#include "ingest/memtable.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace dsf {

const char* AuditViolationKindToString(AuditViolationKind kind) {
  switch (kind) {
    case AuditViolationKind::kCapacityExceeded:
      return "CapacityExceeded";
    case AuditViolationKind::kPageOverflow:
      return "PageOverflow";
    case AuditViolationKind::kPageMalformed:
      return "PageMalformed";
    case AuditViolationKind::kGlobalOrderViolation:
      return "GlobalOrderViolation";
    case AuditViolationKind::kBlockNotPrefixPacked:
      return "BlockNotPrefixPacked";
    case AuditViolationKind::kRankCounterStale:
      return "RankCounterStale";
    case AuditViolationKind::kFenceKeysStale:
      return "FenceKeysStale";
    case AuditViolationKind::kAggregateMismatch:
      return "AggregateMismatch";
    case AuditViolationKind::kBalanceViolation:
      return "BalanceViolation";
    case AuditViolationKind::kWarningStale:
      return "WarningStale";
    case AuditViolationKind::kWarningMissing:
      return "WarningMissing";
    case AuditViolationKind::kRootWarning:
      return "RootWarning";
    case AuditViolationKind::kDestOutOfRange:
      return "DestOutOfRange";
    case AuditViolationKind::kSelectAggregateStale:
      return "SelectAggregateStale";
    case AuditViolationKind::kDirtyOrderViolation:
      return "DirtyOrderViolation";
    case AuditViolationKind::kDirtyListCorrupt:
      return "DirtyListCorrupt";
    case AuditViolationKind::kFrameAliasing:
      return "FrameAliasing";
    case AuditViolationKind::kFrameDirectoryMismatch:
      return "FrameDirectoryMismatch";
    case AuditViolationKind::kPinAccountingMismatch:
      return "PinAccountingMismatch";
    case AuditViolationKind::kPinnedFrameAtQuiescence:
      return "PinnedFrameAtQuiescence";
    case AuditViolationKind::kShardBoundaryViolation:
      return "ShardBoundaryViolation";
    case AuditViolationKind::kStagingOrderViolation:
      return "StagingOrderViolation";
    case AuditViolationKind::kStagingOverCapacity:
      return "StagingOverCapacity";
    case AuditViolationKind::kStagingDuplicateOfFile:
      return "StagingDuplicateOfFile";
    case AuditViolationKind::kStagingTombstoneOrphan:
      return "StagingTombstoneOrphan";
  }
  return "Unknown";
}

std::string AuditViolation::ToString() const {
  std::ostringstream os;
  os << AuditViolationKindToString(kind);
  if (shard >= 0) os << " shard=" << shard;
  if (page != 0) os << " page=" << page;
  if (block != 0) os << " block=" << block;
  if (node >= 0) os << " node=" << node;
  if (expected != 0 || found != 0) {
    os << " expected=" << expected << " found=" << found;
  }
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

bool AuditReport::Has(AuditViolationKind kind) const {
  return Find(kind) != nullptr;
}

const AuditViolation* AuditReport::Find(AuditViolationKind kind) const {
  for (const AuditViolation& v : violations) {
    if (v.kind == kind) return &v;
  }
  return nullptr;
}

Status AuditReport::ToStatus() const {
  if (ok()) return Status::OK();
  return Status::Corruption(
      "audit found " + std::to_string(violations.size()) +
      " violation(s), first: " + violations.front().ToString());
}

std::string AuditReport::ToString() const {
  std::ostringstream os;
  os << "audit: " << checks_run << " checks over " << pages_walked
     << " pages, " << violations.size() << " violation(s)";
  for (const AuditViolation& v : violations) {
    os << "\n  " << v.ToString();
  }
  return os.str();
}

void AuditReport::Merge(AuditReport other, int shard) {
  for (AuditViolation& v : other.violations) {
    v.shard = shard;
    violations.push_back(std::move(v));
  }
  checks_run += other.checks_run;
  pages_walked += other.pages_walked;
}

namespace {

// Collects violations and counts predicate evaluations. Check() is the
// single funnel: one call = one checks_run tick, a failing call appends
// the (location-stamped) violation the caller prepared.
class Collector {
 public:
  explicit Collector(AuditReport* report) : report_(report) {}

  void Check(bool holds, AuditViolation violation) {
    ++report_->checks_run;
    if (!holds) report_->violations.push_back(std::move(violation));
  }

 private:
  AuditReport* report_;
};

AuditViolation Make(AuditViolationKind kind) {
  AuditViolation v;
  v.kind = kind;
  return v;
}

// Physical truth for one block, derived from the logical page view.
struct BlockFacts {
  int64_t count = 0;
  Key min_key = 0;
  Key max_key = 0;
};

void AuditPoolInternal(const BufferPool& pool, const AuditOptions& options,
                       AuditReport* report) {
  Collector check(report);
  const std::vector<BufferPool::FrameInfo> frames = pool.AuditFrames();
  const std::vector<int64_t> dirty_order = pool.DirtyOrderForAudit();
  const int64_t n = static_cast<int64_t>(frames.size());

  // No two frames may cache the same page, and the resident directory
  // must mirror exactly the frames that hold a page.
  std::unordered_set<Address> seen;
  int64_t occupied = 0;
  int64_t total_pins = 0;
  for (int64_t i = 0; i < n; ++i) {
    const BufferPool::FrameInfo& f = frames[static_cast<size_t>(i)];
    total_pins += f.pins;
    if (f.address == 0) continue;
    ++occupied;
    {
      AuditViolation v = Make(AuditViolationKind::kFrameAliasing);
      v.page = f.address;
      v.detail = "frame " + std::to_string(i);
      check.Check(seen.insert(f.address).second, std::move(v));
    }
    {
      AuditViolation v = Make(AuditViolationKind::kFrameDirectoryMismatch);
      v.page = f.address;
      v.detail = "frame " + std::to_string(i) + " not in resident map";
      check.Check(pool.PeekFrame(f.address) != nullptr, std::move(v));
    }
  }
  {
    AuditViolation v = Make(AuditViolationKind::kFrameDirectoryMismatch);
    v.expected = occupied;
    v.found = pool.resident_pages();
    v.detail = "resident map size vs occupied frames";
    check.Check(pool.resident_pages() == occupied, std::move(v));
  }

  // The dirty-order list L: every entry a distinct, genuinely dirty
  // frame; every dirty frame present; entries in the order the frames
  // first became dirty (strictly increasing dirty_seq). This is the
  // ordering crash recovery leans on (buffer_pool.h rules 1-3).
  std::unordered_set<int64_t> listed;
  int64_t previous_seq = -1;
  Address previous_page = 0;
  for (const int64_t frame : dirty_order) {
    const bool in_range = frame >= 0 && frame < n;
    {
      AuditViolation v = Make(AuditViolationKind::kDirtyListCorrupt);
      v.found = frame;
      v.detail = "dirty list entry outside frame table";
      check.Check(in_range, std::move(v));
    }
    if (!in_range) continue;
    const BufferPool::FrameInfo& f = frames[static_cast<size_t>(frame)];
    {
      AuditViolation v = Make(AuditViolationKind::kDirtyListCorrupt);
      v.page = f.address;
      v.detail = "dirty list entry repeated: frame " + std::to_string(frame);
      check.Check(listed.insert(frame).second, std::move(v));
    }
    {
      AuditViolation v = Make(AuditViolationKind::kDirtyListCorrupt);
      v.page = f.address;
      v.detail = "listed frame " + std::to_string(frame) + " is not dirty";
      check.Check(f.dirty, std::move(v));
    }
    {
      AuditViolation v = Make(AuditViolationKind::kDirtyOrderViolation);
      v.page = f.address;
      v.expected = previous_seq;
      v.found = f.dirty_seq;
      v.detail = "dirtied before page " + std::to_string(previous_page) +
                 " but listed after it";
      check.Check(f.dirty_seq > previous_seq, std::move(v));
    }
    previous_seq = f.dirty_seq;
    previous_page = f.address;
  }
  for (int64_t i = 0; i < n; ++i) {
    const BufferPool::FrameInfo& f = frames[static_cast<size_t>(i)];
    AuditViolation v = Make(AuditViolationKind::kDirtyListCorrupt);
    v.page = f.address;
    v.detail = "dirty frame " + std::to_string(i) + " missing from list";
    check.Check(!f.dirty || listed.count(i) > 0, std::move(v));
  }

  // Pin accounting: pins move with PageGuard construction/destruction,
  // so their sum must equal the number of guards alive; at a quiescent
  // point (between commands) that number must be zero.
  {
    AuditViolation v = Make(AuditViolationKind::kPinAccountingMismatch);
    v.expected = pool.live_guards();
    v.found = total_pins;
    check.Check(total_pins == pool.live_guards(), std::move(v));
  }
  if (options.expect_quiescent_pool) {
    for (int64_t i = 0; i < n; ++i) {
      const BufferPool::FrameInfo& f = frames[static_cast<size_t>(i)];
      AuditViolation v = Make(AuditViolationKind::kPinnedFrameAtQuiescence);
      v.page = f.address;
      v.found = f.pins;
      v.detail = std::string("owner=") +
                 (f.owner != nullptr ? f.owner : "untagged");
      check.Check(f.pins == 0, std::move(v));
    }
  }
}

void AuditControl2State(const Control2& control,
                        const std::vector<int64_t>& true_count,
                        AuditReport* report) {
  Collector check(report);
  const Calibrator& calibrator = control.calibrator();
  const DensitySpec& spec = control.logical_spec();
  // The ablation knobs weaken Fact 5.1 by design; only the paper's
  // algorithm promises it (mirrors Control2::ValidateInvariants).
  const bool paper_faithful =
      !control.options().disable_rollback_for_testing &&
      control.options().lower_threshold_thirds == kThirds1Of3;

  for (int v = 0; v < calibrator.node_count(); ++v) {
    const int64_t count = true_count[static_cast<size_t>(v)];
    const int64_t pages = calibrator.PagesIn(v);
    const int64_t depth = calibrator.Depth(v);
    const bool warns = control.warning(v);
    if (paper_faithful) {
      {
        // Fact 5.1a: a warning sticks only while p(v) > g(v,1/3).
        AuditViolation viol = Make(AuditViolationKind::kWarningStale);
        viol.node = v;
        viol.detail = "flag up but p(v) <= g(v,1/3)";
        check.Check(!warns || !spec.DensityAtMost(count, pages, depth,
                                                  kThirds1Of3),
                    std::move(viol));
      }
      if (v != calibrator.root()) {
        // Fact 5.1b: density at g(v,2/3) forces the flag up.
        AuditViolation viol = Make(AuditViolationKind::kWarningMissing);
        viol.node = v;
        viol.detail = "flag down but p(v) >= g(v,2/3)";
        check.Check(warns || !spec.DensityAtLeast(count, pages, depth,
                                                  kThirds2Of3),
                    std::move(viol));
      }
    }
    if (v == calibrator.root()) {
      AuditViolation viol = Make(AuditViolationKind::kRootWarning);
      viol.node = v;
      check.Check(!warns, std::move(viol));
    } else if (warns) {
      // DEST(v) must stay inside RANGE(father(v)) — the region SHIFT(v)
      // is entitled to move records across (Section 4).
      const int father = calibrator.Parent(v);
      const Address dest = control.dest(v);
      AuditViolation viol = Make(AuditViolationKind::kDestOutOfRange);
      viol.node = v;
      viol.found = dest;
      viol.detail = "RANGE(father) = [" +
                    std::to_string(calibrator.RangeLo(father)) + "," +
                    std::to_string(calibrator.RangeHi(father)) + "]";
      check.Check(dest >= calibrator.RangeLo(father) &&
                      dest <= calibrator.RangeHi(father),
                  std::move(viol));
    }
  }

  // SELECT's O(log M) descent reads subtree aggregates; recompute them
  // from the flags bottom-up (children carry higher ids than parents).
  for (int v = calibrator.node_count() - 1; v >= 0; --v) {
    int64_t count = control.warning(v) ? 1 : 0;
    int64_t max_depth = control.warning(v) ? calibrator.Depth(v) : -1;
    if (!calibrator.IsLeaf(v)) {
      count += control.warn_count_subtree(calibrator.Left(v)) +
               control.warn_count_subtree(calibrator.Right(v));
      max_depth =
          std::max({max_depth,
                    control.warn_max_depth_subtree(calibrator.Left(v)),
                    control.warn_max_depth_subtree(calibrator.Right(v))});
    }
    AuditViolation viol = Make(AuditViolationKind::kSelectAggregateStale);
    viol.node = v;
    viol.expected = count;
    viol.found = control.warn_count_subtree(v);
    check.Check(control.warn_count_subtree(v) == count &&
                    control.warn_max_depth_subtree(v) == max_depth,
                std::move(viol));
  }
}

}  // namespace

AuditReport Auditor::AuditPool(const BufferPool& pool,
                               const AuditOptions& options) {
  AuditReport report;
  AuditPoolInternal(pool, options, &report);
  return report;
}

AuditReport Auditor::AuditControl(const ControlBase& control,
                                  const AuditOptions& options) {
  AuditReport report;
  Collector check(&report);
  const Calibrator& calibrator = control.calibrator();
  const DensitySpec& spec = control.logical_spec();
  const int64_t block_size = control.block_size();
  const int64_t page_D = control.page_D();

  // --- Physical walk: every page once, in address order. Everything
  // downstream compares against the facts gathered here, never against
  // the counters under audit.
  std::vector<BlockFacts> facts(static_cast<size_t>(control.num_blocks()));
  Key previous_key = 0;
  bool any_record = false;
  for (Address block = 1; block <= control.num_blocks(); ++block) {
    BlockFacts& fact = facts[static_cast<size_t>(block - 1)];
    bool saw_empty = false;
    bool packed = true;
    for (int64_t i = 0; i < block_size; ++i) {
      const Address address = (block - 1) * block_size + 1 + i;
      const Page& page = control.PeekLogical(address);
      ++report.pages_walked;
      {
        AuditViolation v = Make(AuditViolationKind::kPageMalformed);
        v.page = address;
        v.block = block;
        v.detail = "records not strictly ascending within the page";
        check.Check(page.WellFormed(), std::move(v));
      }
      {
        AuditViolation v = Make(AuditViolationKind::kPageOverflow);
        v.page = address;
        v.block = block;
        v.expected = page_D;
        v.found = page.size();
        check.Check(page.size() <= page_D, std::move(v));
      }
      if (page.empty()) {
        saw_empty = true;
        continue;
      }
      if (saw_empty) packed = false;
      {
        AuditViolation v = Make(AuditViolationKind::kGlobalOrderViolation);
        v.page = address;
        v.block = block;
        v.detail = "page min key " + std::to_string(page.MinKey()) +
                   " not above preceding max " + std::to_string(previous_key);
        check.Check(!any_record || page.MinKey() > previous_key,
                    std::move(v));
      }
      previous_key = page.MaxKey();
      any_record = true;
      if (fact.count == 0) fact.min_key = page.MinKey();
      fact.max_key = page.MaxKey();
      fact.count += page.size();
    }
    AuditViolation v = Make(AuditViolationKind::kBlockNotPrefixPacked);
    v.block = block;
    check.Check(packed, std::move(v));
  }

  // --- Calibrator vs. physical truth: leaves first, then the internal
  // aggregation, then the cardinality bound off the root.
  for (Address block = 1; block <= control.num_blocks(); ++block) {
    const BlockFacts& fact = facts[static_cast<size_t>(block - 1)];
    const int leaf = calibrator.LeafOf(block);
    {
      AuditViolation v = Make(AuditViolationKind::kRankCounterStale);
      v.block = block;
      v.node = leaf;
      v.expected = fact.count;
      v.found = calibrator.Count(leaf);
      check.Check(calibrator.Count(leaf) == fact.count, std::move(v));
    }
    if (fact.count > 0) {
      AuditViolation v = Make(AuditViolationKind::kFenceKeysStale);
      v.block = block;
      v.node = leaf;
      v.detail = "physical [" + std::to_string(fact.min_key) + "," +
                 std::to_string(fact.max_key) + "] vs calibrator [" +
                 std::to_string(calibrator.MinKeyOf(leaf)) + "," +
                 std::to_string(calibrator.MaxKeyOf(leaf)) + "]";
      check.Check(calibrator.MinKeyOf(leaf) == fact.min_key &&
                      calibrator.MaxKeyOf(leaf) == fact.max_key,
                  std::move(v));
    }
  }
  for (int v = 0; v < calibrator.node_count(); ++v) {
    if (calibrator.IsLeaf(v)) continue;
    const int64_t children = calibrator.Count(calibrator.Left(v)) +
                             calibrator.Count(calibrator.Right(v));
    AuditViolation viol = Make(AuditViolationKind::kAggregateMismatch);
    viol.node = v;
    viol.expected = children;
    viol.found = calibrator.Count(v);
    check.Check(calibrator.Count(v) == children, std::move(viol));
  }
  int64_t total = 0;
  for (const BlockFacts& fact : facts) total += fact.count;
  {
    AuditViolation v = Make(AuditViolationKind::kCapacityExceeded);
    v.expected = control.MaxRecords();
    v.found = total;
    check.Check(total <= control.MaxRecords(), std::move(v));
  }

  // --- BALANCE(d,D) from physical counts: aggregate the walk's block
  // counts up the tree (children ids exceed the parent's, so one
  // descending pass suffices) and test p(v) <= g(v,1) at every node.
  std::vector<int64_t> true_count(
      static_cast<size_t>(calibrator.node_count()), 0);
  for (int v = calibrator.node_count() - 1; v >= 0; --v) {
    if (calibrator.IsLeaf(v)) {
      true_count[static_cast<size_t>(v)] =
          facts[static_cast<size_t>(calibrator.RangeLo(v) - 1)].count;
    } else {
      true_count[static_cast<size_t>(v)] =
          true_count[static_cast<size_t>(calibrator.Left(v))] +
          true_count[static_cast<size_t>(calibrator.Right(v))];
    }
  }
  for (int v = 0; v < calibrator.node_count(); ++v) {
    const int64_t count = true_count[static_cast<size_t>(v)];
    AuditViolation viol = Make(AuditViolationKind::kBalanceViolation);
    viol.node = v;
    viol.found = count;
    viol.detail = std::to_string(count) + " records over " +
                  std::to_string(calibrator.PagesIn(v)) +
                  " blocks at depth " +
                  std::to_string(calibrator.Depth(v)) + " exceed g(v,1)";
    check.Check(spec.DensityAtMost(count, calibrator.PagesIn(v),
                                   calibrator.Depth(v), kThirds1),
                std::move(viol));
  }

  // --- Algorithm-specific state.
  if (const auto* control2 = dynamic_cast<const Control2*>(&control)) {
    AuditControl2State(*control2, true_count, &report);
  }

  // --- The attached buffer pool, when any.
  if (control.pool() != nullptr) {
    AuditPoolInternal(*control.pool(), options, &report);
  }
  return report;
}

AuditReport Auditor::AuditStaging(const Memtable& staging,
                                  const ControlBase& control) {
  AuditReport report;
  Collector check(&report);

  // Capacity and order/count sanity re-derived from the entries, not
  // the memtable's own bookkeeping (ValidateOrder trusts nothing
  // either, so reuse it for the count cross-check).
  {
    AuditViolation v = Make(AuditViolationKind::kStagingOverCapacity);
    v.expected = staging.capacity();
    v.found = staging.size();
    v.detail = "staged entries exceed the configured budget";
    check.Check(staging.size() <= staging.capacity(), std::move(v));
  }
  const std::vector<StagedEntry>& entries = staging.entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    AuditViolation v = Make(AuditViolationKind::kStagingOrderViolation);
    v.expected = static_cast<int64_t>(entries[i - 1].record.key);
    v.found = static_cast<int64_t>(entries[i].record.key);
    v.detail = "memtable keys not strictly ascending at index " +
               std::to_string(i);
    check.Check(entries[i - 1].record.key < entries[i].record.key,
                std::move(v));
  }
  {
    AuditViolation v = Make(AuditViolationKind::kStagingOrderViolation);
    v.detail = "memtable per-kind counts out of sync";
    check.Check(staging.ValidateOrder().ok(), std::move(v));
  }

  // The kind invariants against the durable file: kInsert ⇔ the key is
  // absent (staged-vs-file disjointness — a drained entry leaves the
  // buffer), kUpdate/kTombstone ⇔ the key is present.
  for (const StagedEntry& entry : entries) {
    const bool durable = control.PeekContains(entry.record.key);
    if (entry.kind == StagedEntry::Kind::kInsert) {
      AuditViolation v = Make(AuditViolationKind::kStagingDuplicateOfFile);
      v.found = static_cast<int64_t>(entry.record.key);
      v.detail = "staged insert key " + std::to_string(entry.record.key) +
                 " already durable";
      check.Check(!durable, std::move(v));
    } else {
      AuditViolation v = Make(AuditViolationKind::kStagingTombstoneOrphan);
      v.found = static_cast<int64_t>(entry.record.key);
      v.detail = std::string("staged ") +
                 StagedEntryKindToString(entry.kind) + " key " +
                 std::to_string(entry.record.key) + " missing from file";
      check.Check(durable, std::move(v));
    }
  }
  return report;
}

}  // namespace dsf
