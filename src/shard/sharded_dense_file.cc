#include "shard/sharded_dense_file.h"

#include <algorithm>
#include <limits>
#include <string>

#include "analysis/auditor.h"
#include "ingest/memtable.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tune/controller.h"

namespace dsf {

namespace {
constexpr Key kMaxKey = std::numeric_limits<Key>::max();

// The metric label qualifying shard i's series: `shard="i"`.
std::string ShardLabel(int shard) {
  return "shard=\"" + std::to_string(shard) + "\"";
}

// One kSharedRead span per point read when tracing is on: `a` is the
// branch taken (0 = shared lock, 1 = epoch pool hit, 2 = epoch miss
// blocking on the shared lock), `b` the shard index. CommandTracer is
// internally locked, so concurrent readers may record freely.
void TraceReadBranch(CommandTracer* tracer, int branch, int shard) {
  if (tracer == nullptr) return;
  SpanEvent event;
  event.kind = SpanKind::kSharedRead;
  event.a = branch;
  event.b = shard;
  tracer->Record(event);
}
}  // namespace

ShardedDenseFile::MultiShardLock::MultiShardLock(
    const std::vector<std::unique_ptr<Shard>>& shards, int first, int last,
    bool exclusive)
    : shards_(shards), first_(first), last_(last), exclusive_(exclusive) {
  // Ascending acquisition — the one global lock order (DrainRotate and
  // every point operation hold a single lock, trivially consistent with
  // any total order), hence no deadlock between overlapping range ops.
  for (int i = first_; i <= last_; ++i) {
    SharedMutex& mu = shards_[static_cast<size_t>(i)]->mu;
    if (exclusive_) {
      mu.Lock();
    } else {
      mu.ReaderLock();
    }
  }
}

ShardedDenseFile::MultiShardLock::~MultiShardLock() {
  for (int i = last_; i >= first_; --i) {
    SharedMutex& mu = shards_[static_cast<size_t>(i)]->mu;
    if (exclusive_) {
      mu.Unlock();
    } else {
      mu.ReaderUnlock();
    }
  }
}

StatusOr<std::unique_ptr<ShardedDenseFile>> ShardedDenseFile::Create(
    const Options& options) {
  const int s = options.num_shards;
  if (s < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::vector<Key> splitters = options.splitters;
  if (splitters.empty() && s > 1) {
    // Uniform split of [1, key_space] (or of the whole 64-bit space).
    const Key space = options.key_space == 0 ? kMaxKey : options.key_space;
    if (space < static_cast<Key>(s)) {
      return Status::InvalidArgument("key_space smaller than num_shards");
    }
    const Key step = space / static_cast<Key>(s);
    for (int i = 1; i < s; ++i) {
      splitters.push_back(step * static_cast<Key>(i) + 1);
    }
  }
  if (static_cast<int>(splitters.size()) != s - 1) {
    return Status::InvalidArgument("need exactly num_shards - 1 splitters");
  }
  for (size_t i = 1; i < splitters.size(); ++i) {
    if (splitters[i - 1] >= splitters[i]) {
      return Status::InvalidArgument("splitters must strictly ascend");
    }
  }
  DenseFile::Options shard_options = options.shard;
  if (shard_options.backend_factory != nullptr) {
    return Status::InvalidArgument(
        "set shard_backend_factory, not shard.backend_factory: every shard "
        "needs its own backend, an ordinal-blind factory would open one "
        "file pair for all of them");
  }
  if (options.cache_bytes < 0) {
    return Status::InvalidArgument("cache_bytes must be >= 0");
  }
  if (options.cache_bytes > 0 && shard_options.cache_frames == 0) {
    // Split the byte budget evenly: each shard is an independent device
    // with its own pool. A frame holds one physical page of D+1 records.
    const int64_t frame_bytes =
        (shard_options.D + 1) * static_cast<int64_t>(sizeof(Record));
    shard_options.cache_frames =
        std::max<int64_t>(1, options.cache_bytes / s / frame_bytes);
  }
  if (options.staging_bytes < 0) {
    return Status::InvalidArgument("staging_bytes must be >= 0");
  }
  const bool split_staging = options.staging_bytes > 0 &&
                             shard_options.staging_entries == 0 &&
                             shard_options.staging_bytes == 0;
  int64_t staging_base = 0;
  int64_t staging_extra = 0;
  if (split_staging) {
    // The budget buys floor(staging_bytes / entry) staged entries total.
    // Divide them as evenly as possible; the remainder goes one entry
    // each to the first shards, so no slice of the budget is silently
    // dropped (an even split used to lose up to S-1 entries). A budget
    // whose per-shard share cannot hold even one entry is a
    // configuration error, not something to round up: rounding would
    // manufacture capacity the caller never paid for.
    const int64_t entry_bytes = static_cast<int64_t>(sizeof(StagedEntry));
    if (options.staging_bytes / s < entry_bytes) {
      return Status::InvalidArgument(
          "staging_bytes too small: per-shard budget (staging_bytes / "
          "num_shards) must hold at least one staged entry");
    }
    const int64_t total_entries = options.staging_bytes / entry_bytes;
    staging_base = total_entries / s;
    staging_extra = total_entries % s;
  }
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(static_cast<size_t>(s));
  int64_t resolved_block_size = 0;
  for (int i = 0; i < s; ++i) {
    DenseFile::Options per_shard = shard_options;
    if (split_staging) {
      per_shard.staging_entries =
          staging_base + (i < static_cast<int>(staging_extra) ? 1 : 0);
    }
    if (per_shard.metrics != nullptr || per_shard.tracer != nullptr ||
        per_shard.certify_bound) {
      // Every shard publishes the same catalog names; series differ only
      // by the shard label, so dashboards scale with S for free.
      per_shard.metrics_label = ShardLabel(i);
    }
    if (options.shard_backend_factory != nullptr) {
      // Bind the ordinal so each shard's DenseFile opens its own device.
      const auto& factory = options.shard_backend_factory;
      per_shard.backend_factory = [factory, i](int64_t num_pages,
                                               int64_t page_capacity) {
        return factory(i, num_pages, page_capacity);
      };
    }
    StatusOr<std::unique_ptr<DenseFile>> file =
        DenseFile::Create(per_shard);
    if (!file.ok()) return file.status();
    resolved_block_size = (*file)->block_size();
    shards.push_back(std::make_unique<Shard>(std::move(*file)));
  }
  Options resolved = options;
  resolved.splitters = splitters;
  resolved.shard.block_size = resolved_block_size;
  resolved.shard.cache_frames = shard_options.cache_frames;
  // When the byte budget was split, the first staging_extra shards hold
  // one entry more than this base (remainder distribution above).
  resolved.shard.staging_entries =
      split_staging ? staging_base : shard_options.staging_entries;
  std::unique_ptr<ShardedDenseFile> file(new ShardedDenseFile(
      resolved, std::move(splitters), std::move(shards)));
  file->staging_ = split_staging || shard_options.staging_entries > 0 ||
                   shard_options.staging_bytes > 0;
  if (options.shard.metrics != nullptr) {
    MetricsRegistry& reg = *options.shard.metrics;
    const std::string& label = options.shard.metrics_label;
    file->m_read_shared_ =
        reg.FindOrCreateCounter(kMetricReadLockShared, label);
    file->m_read_epoch_hits_ =
        reg.FindOrCreateCounter(kMetricReadLockEpochHits, label);
    file->m_read_epoch_fallbacks_ =
        reg.FindOrCreateCounter(kMetricReadLockEpochFallbacks, label);
    // Same handles the shards publish into (label-matched), so the
    // signal collector reads per-shard access distributions without
    // snapshotting the whole registry.
    file->m_shard_access_.reserve(static_cast<size_t>(s));
    for (int i = 0; i < s; ++i) {
      file->m_shard_access_.push_back(
          reg.FindOrCreateHistogram(kMetricCommandAccesses, ShardLabel(i)));
    }
  }
  if (options.tuning.enabled) {
    file->tuner_ = std::make_unique<AdaptiveController>(
        options.tuning, s, options.shard.metrics);
  }
  return file;
}

ShardedDenseFile::ShardedDenseFile(const Options& options,
                                   std::vector<Key> splitters,
                                   std::vector<std::unique_ptr<Shard>> shards)
    : options_(options),
      splitters_(std::move(splitters)),
      shards_(std::move(shards)) {}

ShardedDenseFile::~ShardedDenseFile() = default;

std::vector<Key> ShardedDenseFile::LearnSplitters(
    const std::vector<Record>& sample, int num_shards) {
  std::vector<Key> splitters;
  if (num_shards <= 1) return splitters;
  splitters.reserve(static_cast<size_t>(num_shards - 1));
  const int64_t n = static_cast<int64_t>(sample.size());
  for (int i = 1; i < num_shards; ++i) {
    Key boundary;
    if (n == 0) {
      // No sample: fall back to a uniform split of the full key space.
      boundary = (kMaxKey / static_cast<Key>(num_shards)) * static_cast<Key>(i);
    } else {
      boundary = sample[static_cast<size_t>(
                            static_cast<int64_t>(i) * n / num_shards)]
                     .key;
    }
    // A boundary that does not strictly exceed the previous one (heavy
    // duplicates in the sample, or a quantile at the very bottom of the
    // key space) would carve out an empty or useless range. Skip it and
    // return fewer splitters — fewer, balanced shards beat the nominal
    // count: manufacturing `back + 1` boundaries routes at most one key
    // per extra shard, and overflows once back reaches kMaxKey.
    if (boundary == 0 ||
        (!splitters.empty() && boundary <= splitters.back())) {
      continue;
    }
    splitters.push_back(boundary);
  }
  return splitters;
}

int ShardedDenseFile::ShardOf(Key key) const {
  return static_cast<int>(
      std::upper_bound(splitters_.begin(), splitters_.end(), key) -
      splitters_.begin());
}

Key ShardedDenseFile::ShardLowerBound(int shard) const {
  return shard == 0 ? 0 : splitters_[static_cast<size_t>(shard - 1)];
}

Key ShardedDenseFile::ShardUpperBound(int shard) const {
  return shard == num_shards() - 1 ? kMaxKey
                                   : splitters_[static_cast<size_t>(shard)];
}

Status ShardedDenseFile::Insert(const Record& record) {
  Status s;
  {
    Shard& shard = *shards_[static_cast<size_t>(ShardOf(record.key))];
    WriterMutexLock lock(shard.mu);
    s = shard.file->Insert(record);
  }
  // Owning lock released: spend this command's piggyback drain budget on
  // the next shard round-robin so idle shards' staging never starves.
  DrainRotate();
  MaybeTune();
  return s;
}

Status ShardedDenseFile::Delete(Key key) {
  Status s;
  {
    Shard& shard = *shards_[static_cast<size_t>(ShardOf(key))];
    WriterMutexLock lock(shard.mu);
    s = shard.file->Delete(key);
  }
  DrainRotate();
  MaybeTune();
  return s;
}

void ShardedDenseFile::DrainRotate() {
  if (!staging_ || num_shards() <= 1) return;
  const int target = static_cast<int>(
      rotate_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<int64_t>(num_shards()));
  Shard& shard = *shards_[static_cast<size_t>(target)];
  WriterMutexLock lock(shard.mu);
  // Only drain a buffer that has reached its trigger: the rotation
  // guards against a shard whose write traffic dried up while staged
  // entries pile at the trigger — not against entries merely existing
  // (those drain on the shard's own commands, or at FlushStaging).
  // Below-trigger peeks make the rotation a near-free lock-and-look.
  if (!shard.file->staging_wants_drain()) return;
  // A drain error on an independent shard is not this command's fault to
  // report: the entry stays staged and the error resurfaces (with the
  // right attribution) on that shard's own next command or flush.
  IgnoreStatus(shard.file->DrainStep());
}

void ShardedDenseFile::MaybeTune() {
  const int64_t publish = options_.publish_metrics_every;
  if (tuner_ == nullptr && publish <= 0) return;
  const int64_t seq =
      command_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (publish > 0 && seq % publish == 0) PublishMetrics();
  // tick_every via the controller's copy: it sanitized the options.
  if (tuner_ != nullptr &&
      seq % tuner_->options().tick_every_commands == 0) {
    ForceTuneTick();
  }
}

void ShardedDenseFile::ForceTuneTick() {
  if (tuner_ == nullptr) return;
  const TuneDecision decision = tuner_->Tick(CollectTuneSignals());
  if (!decision.empty()) ApplyTuneDecision(decision);
}

std::vector<TuneShardSignals> ShardedDenseFile::CollectTuneSignals() const {
  std::vector<TuneShardSignals> signals(
      static_cast<size_t>(num_shards()));
  for (int i = 0; i < num_shards(); ++i) {
    TuneShardSignals& s = signals[static_cast<size_t>(i)];
    const Shard& shard = *shards_[static_cast<size_t>(i)];
    ReaderMutexLock lock(shard.mu);
    const DenseFile& f = *shard.file;
    s.commands = f.command_stats().commands;
    const BufferPool::Stats cache = f.cache_stats();
    s.pool_hits = cache.hits;
    s.pool_misses = cache.misses;
    s.pool_frames = f.cache_frames();
    s.pool_dirty = f.cache_dirty_frames();
    const StagingStats staging = f.staging_stats();
    s.staging_puts = staging.puts;
    s.drained_entries = staging.drained_entries;
    s.staging_annihilations = staging.annihilations;
    s.staging_entries = staging.entries;
    s.staging_capacity = staging.capacity;
    s.drain_batch = f.drain_batch();
    s.records = f.size();
    s.j = f.maintenance_j();
    s.default_j = f.maintenance_j_floor();
    s.budget = f.bound_budget();
    if (static_cast<size_t>(i) < m_shard_access_.size() &&
        m_shard_access_[static_cast<size_t>(i)] != nullptr) {
      s.access_buckets =
          m_shard_access_[static_cast<size_t>(i)]->BucketCounts();
    }
  }
  return signals;
}

void ShardedDenseFile::ApplyTuneDecision(const TuneDecision& decision) {
  CommandTracer* tracer = options_.shard.tracer;
  int64_t actuations = 0;
  int64_t frames_moved = 0;
  int64_t recalibrations = 0;
  // One kTune span per applied actuation: `a` = actuator (0 frame move,
  // 1 drain batch, 2 staging move, 3 J change, 4 re-calibration
  // compact), `b` the actuator-specific detail.
  const auto trace = [tracer](int actuator, int64_t detail) {
    if (tracer == nullptr) return;
    SpanEvent event;
    event.kind = SpanKind::kTune;
    event.a = actuator;
    event.b = detail;
    tracer->Record(event);
  };

  for (const TuneDecision::FrameMove& move : decision.frame_moves) {
    // Shrink the donor first and grant the recipient exactly what came
    // out — apply-time clamping keeps the global frame budget conserved
    // even if signals went stale between tick and apply.
    int64_t moved = 0;
    int64_t donor_before = 0;
    {
      Shard& from = *shards_[static_cast<size_t>(move.from)];
      WriterMutexLock lock(from.mu);
      donor_before = from.file->cache_frames();
      const int64_t target =
          std::max(tuner_->options().min_frames_per_shard,
                   donor_before - move.frames);
      if (target < donor_before && from.file->ResizeCache(target).ok()) {
        moved = donor_before - target;
      }
    }
    if (moved <= 0) continue;
    bool granted = false;
    {
      Shard& to = *shards_[static_cast<size_t>(move.to)];
      WriterMutexLock lock(to.mu);
      granted =
          to.file->ResizeCache(to.file->cache_frames() + moved).ok();
    }
    if (!granted) {
      // Recipient refused (live pins from a cursor): hand the frames
      // back so no slice of the budget is stranded.
      Shard& from = *shards_[static_cast<size_t>(move.from)];
      WriterMutexLock lock(from.mu);
      IgnoreStatus(from.file->ResizeCache(donor_before));
      continue;
    }
    ++actuations;
    frames_moved += moved;
    trace(0, moved);
  }

  for (const TuneDecision::DrainChange& change : decision.drain_changes) {
    Shard& shard = *shards_[static_cast<size_t>(change.shard)];
    WriterMutexLock lock(shard.mu);
    shard.file->SetDrainBatch(change.batch);
    ++actuations;
    trace(1, shard.file->drain_batch());
  }

  for (const TuneDecision::StagingMove& move : decision.staging_moves) {
    int64_t freed = 0;
    {
      Shard& from = *shards_[static_cast<size_t>(move.from)];
      WriterMutexLock lock(from.mu);
      if (from.file->staging() == nullptr) continue;
      const int64_t before = from.file->staging()->capacity();
      const int64_t target = std::max(
          tuner_->options().min_staging_entries, before - move.entries);
      if (target < before) {
        // SetCapacity clamps to the current fill, so `freed` is what
        // actually came out, never entries the buffer still holds.
        freed = before - from.file->SetStagingCapacity(target);
      }
    }
    if (freed <= 0) continue;
    Shard& to = *shards_[static_cast<size_t>(move.to)];
    WriterMutexLock lock(to.mu);
    if (to.file->staging() == nullptr) continue;
    to.file->SetStagingCapacity(to.file->staging()->capacity() + freed);
    ++actuations;
    trace(2, freed);
  }

  for (const TuneDecision::Recalibration& recal : decision.recalibrations) {
    Shard& shard = *shards_[static_cast<size_t>(recal.shard)];
    WriterMutexLock lock(shard.mu);
    bool applied = false;
    if (recal.set_j > 0 &&
        shard.file->SetMaintenanceJ(recal.set_j).ok()) {
      applied = true;
      trace(3, recal.set_j);
    }
    if (recal.compact && shard.file->Compact().ok()) {
      applied = true;
      trace(4, recal.shard);
    }
    if (applied) {
      ++actuations;
      ++recalibrations;
    }
  }

  tuner_->RecordApplied(actuations, frames_moved, recalibrations);
}

StatusOr<Value> ShardedDenseFile::Get(Key key) const {
  const int index = ShardOf(key);
  const Shard& shard = *shards_[static_cast<size_t>(index)];
  if (options_.exclusive_reads) {
    WriterMutexLock lock(shard.mu);
    return shard.file->Get(key);
  }
  // Branch 0 — uncontended (or reader-shared) shard: a shared hold lets
  // any number of point reads overlap each other and the range scans.
  if (shard.mu.ReaderTryLock()) {
    StatusOr<Value> result = shard.file->Get(key);
    shard.mu.ReaderUnlock();
    if (m_read_shared_ != nullptr) m_read_shared_->Increment();
    TraceReadBranch(options_.shard.tracer, 0, index);
    return result;
  }
  // Branch 1 — a writer holds the shard: epoch-validated read straight
  // from the buffer pool. Positive hits only; a miss proves nothing
  // (page not resident, frame mid-write, staged entries pending), so it
  // cannot answer "not found".
  Value value = 0;
  if (shard.epoch->TryEpochGet(key, &value)) {
    if (m_read_epoch_hits_ != nullptr) m_read_epoch_hits_->Increment();
    TraceReadBranch(options_.shard.tracer, 1, index);
    return value;
  }
  // Branch 2 — epoch miss: queue behind the writer like before.
  if (m_read_epoch_fallbacks_ != nullptr) {
    m_read_epoch_fallbacks_->Increment();
  }
  TraceReadBranch(options_.shard.tracer, 2, index);
  ReaderMutexLock lock(shard.mu);
  return shard.file->Get(key);
}

bool ShardedDenseFile::Contains(Key key) const {
  const int index = ShardOf(key);
  const Shard& shard = *shards_[static_cast<size_t>(index)];
  if (options_.exclusive_reads) {
    WriterMutexLock lock(shard.mu);
    return shard.file->Contains(key);
  }
  // Same three branches as Get; see there for the rationale.
  if (shard.mu.ReaderTryLock()) {
    const bool found = shard.file->Contains(key);
    shard.mu.ReaderUnlock();
    if (m_read_shared_ != nullptr) m_read_shared_->Increment();
    TraceReadBranch(options_.shard.tracer, 0, index);
    return found;
  }
  Value value = 0;
  if (shard.epoch->TryEpochGet(key, &value)) {
    if (m_read_epoch_hits_ != nullptr) m_read_epoch_hits_->Increment();
    TraceReadBranch(options_.shard.tracer, 1, index);
    return true;
  }
  if (m_read_epoch_fallbacks_ != nullptr) {
    m_read_epoch_fallbacks_->Increment();
  }
  TraceReadBranch(options_.shard.tracer, 2, index);
  ReaderMutexLock lock(shard.mu);
  return shard.file->Contains(key);
}

Status ShardedDenseFile::Scan(Key lo, Key hi,
                              std::vector<Record>* out) const {
  if (lo > hi) return Status::OK();
  const int first = ShardOf(lo);
  const int last = ShardOf(hi);
  // All affected shards locked shared for the whole scan: concurrent
  // point reads still overlap, while a racing DeleteRange (which takes
  // the same set exclusive) is either entirely before or entirely after
  // this snapshot — never interleaved shard-by-shard. Shards partition
  // the key space in order, so appending per-shard results in ascending
  // shard order yields global key order.
  MultiShardLock lock(shards_, first, last,
                      /*exclusive=*/options_.exclusive_reads);
  for (int i = first; i <= last; ++i) {
    const Shard& shard = *shards_[static_cast<size_t>(i)];
    DSF_RETURN_IF_ERROR(shard.epoch->Scan(lo, hi, out));
  }
  return Status::OK();
}

StatusOr<std::vector<Record>> ShardedDenseFile::ScanAll() const {
  std::vector<Record> out;
  DSF_RETURN_IF_ERROR(Scan(0, kMaxKey, &out));
  return out;
}

void ShardedDenseFile::SetFaultPolicy(int shard,
                                      std::shared_ptr<FaultPolicy> policy) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  WriterMutexLock lock(s.mu);
  s.file->set_fault_policy(std::move(policy));
}

StatusOr<RepairReport> ShardedDenseFile::CheckAndRepair() {
  RepairReport total;
  for (const auto& shard : shards_) {
    WriterMutexLock lock(shard->mu);
    StatusOr<RepairReport> part = shard->file->CheckAndRepair();
    if (!part.ok()) return part.status();
    total.blocks_scanned += part->blocks_scanned;
    total.calibrator_resyncs += part->calibrator_resyncs;
    total.duplicate_records_dropped += part->duplicate_records_dropped;
    total.misordered_blocks += part->misordered_blocks;
    total.overfull_pages += part->overfull_pages;
    total.packing_violations += part->packing_violations;
    total.rewrote_file = total.rewrote_file || part->rewrote_file;
    total.warning_state_rebuilt =
        total.warning_state_rebuilt || part->warning_state_rebuilt;
  }
  return total;
}

Status ShardedDenseFile::Flush() {
  Status first_error = Status::OK();
  for (const auto& shard : shards_) {
    WriterMutexLock lock(shard->mu);
    const Status s = shard->file->Flush();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

void ShardedDenseFile::DiscardCaches() {
  for (const auto& shard : shards_) {
    WriterMutexLock lock(shard->mu);
    shard->file->DiscardCache();
  }
}

Status ShardedDenseFile::FlushStaging() {
  Status first_error = Status::OK();
  for (const auto& shard : shards_) {
    WriterMutexLock lock(shard->mu);
    const Status s = shard->file->FlushStaging();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

void ShardedDenseFile::DiscardStaging() {
  for (const auto& shard : shards_) {
    WriterMutexLock lock(shard->mu);
    shard->file->DiscardStaging();
  }
}

StagingStats ShardedDenseFile::staging_stats() const {
  StagingStats total;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(shard->mu);
    total += shard->file->staging_stats();
  }
  return total;
}

StagingStats ShardedDenseFile::shard_staging_stats(int shard) const {
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  ReaderMutexLock lock(s.mu);
  return s.file->staging_stats();
}

BufferPool::Stats ShardedDenseFile::cache_stats() const {
  BufferPool::Stats total;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(shard->mu);
    total += shard->file->cache_stats();
  }
  return total;
}

StatusOr<int64_t> ShardedDenseFile::DeleteRange(Key lo, Key hi) {
  if (lo > hi) return static_cast<int64_t>(0);
  int64_t removed = 0;
  const int first = ShardOf(lo);
  const int last = ShardOf(hi);
  // Every affected shard stays locked exclusive until the whole range is
  // deleted. Before this, shards were tombstoned one lock at a time, so
  // a concurrent Scan over the same range (or even a single-threaded
  // interleaving via the piggybacked drain) could observe a half-deleted
  // prefix; now a scan orders entirely before or after the range op.
  MultiShardLock lock(shards_, first, last, /*exclusive=*/true);
  for (int i = first; i <= last; ++i) {
    Shard& shard = *shards_[static_cast<size_t>(i)];
    StatusOr<int64_t> part = shard.held_file()->DeleteRange(lo, hi);
    if (!part.ok()) return part.status();
    removed += *part;
  }
  return removed;
}

Status ShardedDenseFile::InsertBatch(const std::vector<Record>& records) {
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i - 1].key >= records[i].key) {
      return Status::InvalidArgument(
          "batch records must be strictly ascending by key");
    }
  }
  // Ascending records route to ascending shards: each shard's share is a
  // contiguous slice ending where keys reach its upper bound.
  size_t begin = 0;
  for (int i = 0; i < num_shards() && begin < records.size(); ++i) {
    size_t end = records.size();
    if (i < num_shards() - 1) {
      end = static_cast<size_t>(
          std::lower_bound(records.begin() + static_cast<int64_t>(begin),
                           records.end(), Record{ShardUpperBound(i), 0},
                           RecordKeyLess) -
          records.begin());
    }
    if (end > begin) {
      // Ascent was validated once above, so each shard takes its slice
      // through the sorted fast path — a pointer range straight into the
      // caller's vector, no defensive copy and no re-validation.
      Shard& shard = *shards_[static_cast<size_t>(i)];
      WriterMutexLock lock(shard.mu);
      DSF_RETURN_IF_ERROR(
          shard.file->InsertBatchSorted(records.data() + begin,
                                        records.data() + end));
    }
    begin = end;
  }
  return Status::OK();
}

Status ShardedDenseFile::BulkLoad(const std::vector<Record>& records) {
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i - 1].key >= records[i].key) {
      return Status::InvalidArgument(
          "bulk load records must be strictly ascending by key");
    }
  }
  size_t begin = 0;
  for (int i = 0; i < num_shards(); ++i) {
    size_t end = records.size();
    if (i < num_shards() - 1) {
      end = static_cast<size_t>(
          std::lower_bound(records.begin() + static_cast<int64_t>(begin),
                           records.end(), Record{ShardUpperBound(i), 0},
                           RecordKeyLess) -
          records.begin());
    }
    const std::vector<Record> slice(
        records.begin() + static_cast<int64_t>(begin),
        records.begin() + static_cast<int64_t>(end));
    Shard& shard = *shards_[static_cast<size_t>(i)];
    WriterMutexLock lock(shard.mu);
    DSF_RETURN_IF_ERROR(shard.file->BulkLoad(slice));
    begin = end;
  }
  return Status::OK();
}

Status ShardedDenseFile::Compact() {
  for (const auto& shard : shards_) {
    WriterMutexLock lock(shard->mu);
    DSF_RETURN_IF_ERROR(shard->file->Compact());
  }
  return Status::OK();
}

Status ShardedDenseFile::ValidateInvariants() const {
  for (int i = 0; i < num_shards(); ++i) {
    const Shard& shard = *shards_[static_cast<size_t>(i)];
    WriterMutexLock lock(shard.mu);
    DSF_RETURN_IF_ERROR(shard.file->ValidateInvariants());
    // Routing invariant also covers the staging buffer: a staged key
    // that drains into a foreign range would break the global order.
    const Memtable* staging = shard.file->staging();
    if (staging != nullptr && !staging->empty()) {
      const Key staged_min = staging->entries().front().record.key;
      const Key staged_max = staging->entries().back().record.key;
      if (staged_min < ShardLowerBound(i) ||
          (i < num_shards() - 1 && staged_max >= ShardUpperBound(i))) {
        return Status::Corruption("shard " + std::to_string(i) +
                                  " staged keys outside its routed range");
      }
    }
    // Routing invariant: every stored key lies in the shard's range.
    const Calibrator& cal = shard.file->control().calibrator();
    if (cal.TotalRecords() == 0) continue;
    const Key min_key = cal.MinKeyOf(cal.root());
    const Key max_key = cal.MaxKeyOf(cal.root());
    if (min_key < ShardLowerBound(i) ||
        (i < num_shards() - 1 && max_key >= ShardUpperBound(i))) {
      return Status::Corruption("shard " + std::to_string(i) +
                                " holds keys outside its routed range");
    }
  }
  return Status::OK();
}

AuditReport ShardedDenseFile::Audit() const {
  AuditReport report;
  for (int i = 0; i < num_shards(); ++i) {
    const Shard& shard = *shards_[static_cast<size_t>(i)];
    WriterMutexLock lock(shard.mu);
    report.Merge(shard.file->Audit(), i);
    // Staged keys obey the same routing boundary as durable ones.
    const Memtable* staging = shard.file->staging();
    if (staging != nullptr && !staging->empty()) {
      ++report.checks_run;
      const Key staged_min = staging->entries().front().record.key;
      const Key staged_max = staging->entries().back().record.key;
      if (staged_min < ShardLowerBound(i) ||
          (i < num_shards() - 1 && staged_max >= ShardUpperBound(i))) {
        AuditViolation v;
        v.kind = AuditViolationKind::kShardBoundaryViolation;
        v.shard = i;
        v.detail = "staged keys [" + std::to_string(staged_min) + "," +
                   std::to_string(staged_max) + "] outside routed range [" +
                   std::to_string(ShardLowerBound(i)) + "," +
                   std::to_string(ShardUpperBound(i)) + ")";
        report.violations.push_back(std::move(v));
      }
    }
    // Boundary disjointness: the shard's whole key range (root fences)
    // must sit inside [ShardLowerBound, ShardUpperBound) — ranges of
    // distinct shards cannot overlap.
    ++report.checks_run;
    const Calibrator& cal = shard.file->control().calibrator();
    if (cal.TotalRecords() == 0) continue;
    const Key min_key = cal.MinKeyOf(cal.root());
    const Key max_key = cal.MaxKeyOf(cal.root());
    if (min_key < ShardLowerBound(i) ||
        (i < num_shards() - 1 && max_key >= ShardUpperBound(i))) {
      AuditViolation v;
      v.kind = AuditViolationKind::kShardBoundaryViolation;
      v.shard = i;
      v.detail = "keys [" + std::to_string(min_key) + "," +
                 std::to_string(max_key) + "] outside routed range [" +
                 std::to_string(ShardLowerBound(i)) + "," +
                 std::to_string(ShardUpperBound(i)) + ")";
      report.violations.push_back(std::move(v));
    }
  }
  return report;
}

int64_t ShardedDenseFile::size() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(shard->mu);
    total += shard->file->size();
  }
  return total;
}

int64_t ShardedDenseFile::capacity() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    // Capacity is immutable, but the guarded file pointer is reached
    // under the lock so the access stays analyzable (and uncontended
    // lock acquisition is trivially cheap on this cold path).
    ReaderMutexLock lock(shard->mu);
    total += shard->file->capacity();
  }
  return total;
}

IoStats ShardedDenseFile::io_stats() const {
  IoStats total;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(shard->mu);
    total += shard->file->io_stats();
  }
  return total;
}

CommandStats ShardedDenseFile::command_stats() const {
  CommandStats total;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(shard->mu);
    const CommandStats& s = shard->file->command_stats();
    total.commands += s.commands;
    total.total_accesses += s.total_accesses;
    total.max_command_accesses =
        std::max(total.max_command_accesses, s.max_command_accesses);
  }
  return total;
}

void ShardedDenseFile::SetAccessLatency(std::chrono::nanoseconds latency) {
  for (const auto& shard : shards_) {
    WriterMutexLock lock(shard->mu);
    shard->file->control().file().set_access_latency(latency);
  }
}

void ShardedDenseFile::SetDiskModel(const DiskModel& model, bool sleep) {
  for (const auto& shard : shards_) {
    WriterMutexLock lock(shard->mu);
    shard->file->control().file().set_disk_model(model, sleep);
  }
}

void ShardedDenseFile::PublishMetrics() const {
  MetricsRegistry* registry = options_.shard.metrics;
  if (registry == nullptr) return;
  int64_t total = 0;
  int64_t heaviest = 0;
  for (int i = 0; i < num_shards(); ++i) {
    const int64_t n = shard_size(i);
    registry->FindOrCreateGauge(kMetricShardRecords, ShardLabel(i))->Set(n);
    total += n;
    heaviest = std::max(heaviest, n);
  }
  // 1000 * (most loaded / mean); an empty file reads as balanced.
  const int64_t imbalance =
      total == 0 ? 1000
                 : heaviest * 1000 * static_cast<int64_t>(num_shards()) /
                       total;
  registry->FindOrCreateGauge(kMetricShardImbalance)->Set(imbalance);
}

void ShardedDenseFile::ResetStats() {
  for (const auto& shard : shards_) {
    WriterMutexLock lock(shard->mu);
    shard->file->ResetIoStats();
    shard->file->ResetCommandStats();
  }
}

IoStats ShardedDenseFile::shard_io_stats(int shard) const {
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  ReaderMutexLock lock(s.mu);
  return s.file->io_stats();
}

CommandStats ShardedDenseFile::shard_command_stats(int shard) const {
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  ReaderMutexLock lock(s.mu);
  return s.file->command_stats();
}

int64_t ShardedDenseFile::shard_size(int shard) const {
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  ReaderMutexLock lock(s.mu);
  return s.file->size();
}

Status ShardedDenseFile::ResizeShardCache(int shard, int64_t frames) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  WriterMutexLock lock(s.mu);
  return s.file->ResizeCache(frames);
}

int64_t ShardedDenseFile::shard_cache_frames(int shard) const {
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  ReaderMutexLock lock(s.mu);
  return s.file->cache_frames();
}

int64_t ShardedDenseFile::shard_drain_batch(int shard) const {
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  ReaderMutexLock lock(s.mu);
  return s.file->drain_batch();
}

int64_t ShardedDenseFile::shard_staging_capacity(int shard) const {
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  ReaderMutexLock lock(s.mu);
  return s.file->staging() == nullptr ? 0 : s.file->staging()->capacity();
}

int64_t ShardedDenseFile::shard_maintenance_j(int shard) const {
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  ReaderMutexLock lock(s.mu);
  return s.file->maintenance_j();
}

}  // namespace dsf
