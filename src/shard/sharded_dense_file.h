// ShardedDenseFile — key-range sharding over independent dense files.
//
// Partitions the key space into S contiguous ranges by a splitter vector
// chosen at create time and serves each range with its own DenseFile.
// Willard's worst-case bound is per file, so every shard keeps the full
// O(log^2 (M/S) / (D-d)) guarantee over its own M/S pages — partitioning
// strictly tightens the per-command bound while letting commands on
// different shards run genuinely in parallel: each shard is guarded by
// its own mutex and there is no global lock.
//
// Locking protocol (reader-writer; see docs/CONCURRENCY.md):
//  - Mutating point operations take the owning shard's lock exclusive.
//  - Point reads (Get/Contains) run a three-branch protocol: try the
//    shard lock shared (uncontended case, readers overlap freely); if a
//    writer holds it, attempt an epoch-validated read straight from the
//    shard's BufferPool (DenseFile::TryEpochGet — positive hits only,
//    never blocks, never touches the device); if that misses, block on
//    the shared lock. dsf_read_lock_* counters expose the branch taken.
//  - Range reads (Scan/ScanAll) hold ALL affected shards' locks shared
//    for the whole operation; range writes (DeleteRange) hold them all
//    exclusive. Locks are always acquired in ascending shard order —
//    one global order, hence no deadlock — so a scan racing a range
//    delete sees all-or-nothing, never a half-deleted prefix.
//  - Whole-file maintenance (Flush, Compact, BulkLoad, ...) visits
//    shards in ascending order, one exclusive lock at a time; read-only
//    aggregates (stats, size) visit one shared lock at a time.
// Options::exclusive_reads restores the pre-reader/writer behavior
// (every operation exclusive) for A/B benchmarking.
//
// Routing: splitter keys s_1 < ... < s_{S-1} assign key k to shard
// upper_bound(splitters, k), i.e. shard i serves [s_i, s_{i+1}) with
// s_0 = 0 and s_S = +inf. Splitters are fixed for the file's lifetime;
// choose them uniformly over an expected key space or learn them from a
// bulk-load sample with LearnSplitters (equi-depth quantiles).
//
// See docs/SHARDING.md for the full design discussion.

#ifndef DSF_SHARD_SHARDED_DENSE_FILE_H_
#define DSF_SHARD_SHARDED_DENSE_FILE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "core/control_base.h"
#include "core/dense_file.h"
#include "storage/io_stats.h"
#include "storage/record.h"
#include "tune/tune_options.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dsf {

struct AuditReport;
class AdaptiveController;
class Counter;
class Histogram;
struct TuneDecision;
struct TuneShardSignals;

class ShardedDenseFile {
 public:
  struct Options {
    // Number of shards S >= 1.
    int num_shards = 1;
    // Per-shard geometry: every shard is an independent DenseFile with
    // shard.num_pages pages, so the sharded file stores up to
    // num_shards * d * shard.num_pages records in total.
    DenseFile::Options shard;
    // Explicit routing boundaries: exactly num_shards - 1 strictly
    // ascending keys (empty to derive uniform splitters from key_space).
    std::vector<Key> splitters;
    // When splitters is empty: boundaries at i * key_space / S for
    // i in [1, S). 0 means the full 64-bit key space.
    Key key_space = 0;
    // Shared cache byte budget, split evenly into per-shard buffer pools
    // (each shard models an independent device, so it gets its own pool
    // and its own dirty-order list; see docs/CACHING.md). Frames per
    // shard = cache_bytes / S / page bytes, at least 1 when any budget
    // is given. Ignored when shard.cache_frames is set explicitly.
    int64_t cache_bytes = 0;
    // Shared staging byte budget, split into per-shard memtables: the
    // budget buys floor(staging_bytes / sizeof(StagedEntry)) entries
    // total, divided as evenly as possible with the remainder going to
    // the first shards (no byte of the budget is silently dropped). A
    // budget too small to stage one entry per shard is rejected with
    // kInvalidArgument rather than rounded up. Ignored
    // when shard.staging_entries / shard.staging_bytes is set explicitly.
    // 0 with neither per-shard field set disables staging. See
    // docs/INGEST.md.
    int64_t staging_bytes = 0;
    // Per-shard durable backends: called once per shard with the shard
    // ordinal and the shard's physical geometry. Each shard is an
    // independent device and must get its own backend (e.g. its own
    // FileBackend directory) — which is why shard.backend_factory must
    // stay null here: copying one ordinal-blind factory into every
    // shard would hand all of them the same file pair, and Create
    // rejects that with kInvalidArgument. Null disables durable storage.
    std::function<StatusOr<std::unique_ptr<StorageBackend>>(
        int shard, int64_t num_pages, int64_t page_capacity)>
        shard_backend_factory;
    // Ablation knob: take every shard lock exclusive, as before the
    // reader-writer split — the baseline the rwlock benchmark compares
    // against. Leave false outside A/B measurements.
    bool exclusive_reads = false;
    // Closed-loop self-tuning (src/tune/; see docs/TUNING.md). When
    // enabled, an AdaptiveController ticks every tick_every_commands
    // point commands — piggybacked on the command that crosses the
    // boundary, after its shard lock is released — and rebalances pool
    // frames, drain batches / staging capacity, and the J-headroom
    // advisory across shards. BoundCertifier stays the hard envelope.
    TuneOptions tuning;
    // Re-publish the PublishMetrics() load gauges automatically every
    // this many point commands (0 = manual calls only). Piggybacks on
    // the same command counter as the tuner, so gauges are at most this
    // many commands stale once traffic flows.
    int64_t publish_metrics_every = 0;
  };

  // Validates options (splitter count/order, per-shard geometry) and
  // builds S empty shards.
  static StatusOr<std::unique_ptr<ShardedDenseFile>> Create(
      const Options& options);

  // Out-of-line: the controller is only forward-declared here.
  ~ShardedDenseFile();

  // Equi-depth splitters from a key-sorted sample: boundary i sits at the
  // key starting the i-th of num_shards equal-count slices. Quantiles
  // that would not strictly ascend (duplicate-heavy samples) or would sit
  // at key 0 are dropped rather than fabricated, so the result may hold
  // FEWER than num_shards - 1 splitters; pass result.size() + 1 as the
  // effective num_shards to Create. Feed the result into
  // Options::splitters before Create to balance shard load under the
  // sampled distribution.
  static std::vector<Key> LearnSplitters(const std::vector<Record>& sample,
                                         int num_shards);

  // --- Point operations (lock the owning shard only; writes exclusive,
  // reads via the shared-lock / epoch protocol in the header comment) ---
  Status Insert(Key key, Value value) { return Insert(Record{key, value}); }
  Status Insert(const Record& record);
  Status Delete(Key key);
  StatusOr<Value> Get(Key key) const;
  bool Contains(Key key) const;

  // --- Cross-shard range operations (all affected shards locked for the
  // whole call, ascending order: shared for reads, exclusive for
  // DeleteRange; per-shard results stitched in key order) ---
  Status Scan(Key lo, Key hi, std::vector<Record>* out) const;
  StatusOr<std::vector<Record>> ScanAll() const;
  StatusOr<int64_t> DeleteRange(Key lo, Key hi);
  // Strictly-ascending records, routed per shard, inserted one command at
  // a time. Stops at the first error.
  Status InsertBatch(const std::vector<Record>& records);
  // Loads strictly-ascending records; each shard receives its slice at
  // uniform density. Splitters are fixed — records route by them, so a
  // slice can exceed one shard's capacity if the splitters fit the data
  // poorly (CapacityExceeded; choose splitters with LearnSplitters).
  Status BulkLoad(const std::vector<Record>& records);
  Status Compact();
  // Per-shard invariant sweep plus the routing invariant: every record
  // lives in the shard its key routes to.
  Status ValidateInvariants() const;

  // Typed audit across all shards (ascending, one lock at a time): each
  // shard's full DenseFile::Audit() with violations stamped by shard
  // index, plus the boundary-disjointness check that every shard's key
  // range stays inside [ShardLowerBound, ShardUpperBound). See
  // analysis/auditor.h.
  AuditReport Audit() const;

  // --- Fault injection & recovery ---
  // Installs (or clears) a fault schedule on one shard's page store.
  // Shards model independent devices, so each carries its own policy.
  void SetFaultPolicy(int shard, std::shared_ptr<FaultPolicy> policy);
  // Runs DenseFile::CheckAndRepair on every shard (ascending, one lock at
  // a time) and aggregates the reports: counters summed, flags OR-ed.
  StatusOr<RepairReport> CheckAndRepair();
  // Flushes every shard's staging buffer and pool (ascending, one lock
  // at a time); first error wins, remaining shards still flush.
  Status Flush();
  // Drops every shard's cached frames without write-back — the RAM half
  // of a whole-machine crash. Follow with CheckAndRepair(). (Staged
  // entries are dropped separately by DiscardStaging — both halves are
  // RAM, but tests exercise them independently.)
  void DiscardCaches();

  // --- Ingest staging (per-shard memtables; see docs/INGEST.md) ---
  // Drains every shard's staging buffer to its file (ascending, one lock
  // at a time) — the staging durability point.
  Status FlushStaging();
  // Drops every shard's staged entries without draining — the volatile
  // half of a crash (pair with DiscardCaches()).
  void DiscardStaging();
  // Summed / per-shard staging counters (zeroes when staging is off).
  StagingStats staging_stats() const;
  StagingStats shard_staging_stats(int shard) const;

  // --- Introspection ---
  int num_shards() const { return static_cast<int>(shards_.size()); }
  // The shard index serving `key` (in [0, num_shards)).
  int ShardOf(Key key) const;
  const std::vector<Key>& splitters() const { return splitters_; }
  int64_t size() const;
  int64_t capacity() const;

  // Aggregates summed one shared shard lock at a time. Counters are
  // exact (AccessTracker fields are atomics); only the seek/sequential
  // split is approximate while concurrent epoch readers interleave
  // addresses (see storage/io_stats.h).
  IoStats io_stats() const;
  CommandStats command_stats() const;  // last_command_accesses is 0
  void ResetStats();

  // Summed pool counters across shards (zeroes when caching is off).
  BufferPool::Stats cache_stats() const;

  // Per-shard views for tests, benches and load diagnostics.
  IoStats shard_io_stats(int shard) const;
  CommandStats shard_command_stats(int shard) const;
  int64_t shard_size(int shard) const;
  // Tuning-actuator gauges per shard (pool frames / drain batch /
  // staging capacity / maintenance J), for conservation assertions in
  // tests and benches.
  int64_t shard_cache_frames(int shard) const;
  int64_t shard_drain_batch(int shard) const;
  int64_t shard_staging_capacity(int shard) const;
  int64_t shard_maintenance_j(int shard) const;

  // Manually retargets one shard's pool frame count (the same actuator
  // the controller drives) — for static-configuration baselines in
  // benches and for tests. FailedPrecondition when the shard runs
  // without a pool or holds live pins.
  Status ResizeShardCache(int shard, int64_t frames);

  // The self-tuning controller (null unless Options::tuning.enabled).
  const AdaptiveController* tuner() const { return tuner_.get(); }
  // Runs one controller tick right now (collect signals, decide, apply)
  // regardless of the command cadence — deterministic control for tests
  // and benches. No-op without a controller.
  void ForceTuneTick();

  // Applies PageFile's simulated device latency to every shard — each
  // shard models its own device, so concurrent commands on different
  // shards overlap their page-access waits.
  void SetAccessLatency(std::chrono::nanoseconds latency);
  // Seek-aware variant: installs the disk model on every shard's page
  // store (see PageFile::set_disk_model).
  void SetDiskModel(const DiskModel& model, bool sleep);

  // Publishes the current per-shard load distribution into the metrics
  // registry the shards were created with (Options::shard.metrics):
  // one kMetricShardRecords gauge per shard (label `shard="i"`) plus the
  // kMetricShardImbalance gauge, 1000 * (most loaded / mean) — 1000 is
  // perfectly balanced. Pull-based: call at snapshot points rather than
  // per command, so shard routing stays O(log S) with no gauge traffic.
  // No-op when no registry was installed. Locks one shard at a time.
  void PublishMetrics() const;

  const Options& options() const { return options_; }

 private:
  // One key range's independent DenseFile behind its own annotated
  // reader-writer mutex. `file` is GUARDED_BY(mu): Clang's
  // -Wthread-safety analysis (DSF_ANALYZE mode) rejects any access
  // without at least a shared hold, which makes the locking protocol in
  // the header comment machine-checked. `epoch` is a lock-free alias of
  // the same DenseFile reserved for the epoch read branch: TryEpochGet
  // is internally synchronized (buffer-pool mutex + frame version
  // validation + staging gauge), so that one entry point is sound to
  // reach while a writer holds `mu`. Both pointers are set at
  // construction, before the shard is shared, and never reassigned.
  struct Shard {
    explicit Shard(std::unique_ptr<DenseFile> f)
        : file(std::move(f)), epoch(file.get()) {}
    mutable SharedMutex mu;
    std::unique_ptr<DenseFile> file DSF_GUARDED_BY(mu);
    const DenseFile* const epoch;

    // Analysis-exempt access for MultiShardLock regions: the lock IS
    // held (shared or exclusive), the static analysis just cannot model
    // a dynamic lock set. Never call without a MultiShardLock covering
    // this shard.
    DenseFile* held_file() const DSF_NO_THREAD_SAFETY_ANALYSIS {
      return file.get();
    }
  };

  // Holds shards [first, last] of `shards`, shared or exclusive,
  // acquired in ascending index order (the global lock order) and
  // released in descending order. The lock set is dynamic, so the
  // thread-safety analysis cannot model it; the bodies are exempt and
  // callers touch the guarded files through Shard::epoch (reads) or an
  // analysis-exempt helper (DeleteRange).
  class MultiShardLock {
   public:
    MultiShardLock(const std::vector<std::unique_ptr<Shard>>& shards,
                   int first, int last,
                   bool exclusive) DSF_NO_THREAD_SAFETY_ANALYSIS;
    ~MultiShardLock() DSF_NO_THREAD_SAFETY_ANALYSIS;
    MultiShardLock(const MultiShardLock&) = delete;
    MultiShardLock& operator=(const MultiShardLock&) = delete;

   private:
    const std::vector<std::unique_ptr<Shard>>& shards_;
    const int first_;
    const int last_;
    const bool exclusive_;
  };

  // Out-of-line (like the destructor): the forward-declared controller
  // member's deleter must not be instantiated here.
  ShardedDenseFile(const Options& options, std::vector<Key> splitters,
                   std::vector<std::unique_ptr<Shard>> shards);

  // Smallest key routed to `shard` / to `shard + 1` (kMaxKey sentinel for
  // the last shard's open upper end).
  Key ShardLowerBound(int shard) const;
  Key ShardUpperBound(int shard) const;

  // Drain-on-rotate: after a point command on one shard releases its
  // lock, spend that command's piggyback budget on the *next* shard in
  // round-robin order instead, so a shard whose own write traffic dried
  // up still gets its staged entries drained. One lock at a time (the
  // owning shard's lock is already released), so no ordering cycles.
  void DrainRotate();

  // Tuning / publish piggyback, called after every point command once
  // its shard lock is released (same pattern as DrainRotate): bumps the
  // command counter and, on a cadence boundary, republishes load gauges
  // and/or runs one controller tick.
  void MaybeTune();
  // One cumulative signal snapshot per shard, one reader lock at a time
  // (consistent with the global ascending order).
  std::vector<TuneShardSignals> CollectTuneSignals() const;
  // Applies a controller decision one writer lock at a time, clamping
  // at apply time so pool frames and staging capacity are conserved
  // exactly (what a donor actually gave is what the recipient gets);
  // records one kTune span per applied actuation and reports the
  // applied totals back to the controller.
  void ApplyTuneDecision(const TuneDecision& decision);

  Options options_;
  std::vector<Key> splitters_;  // strictly ascending, size num_shards - 1
  std::vector<std::unique_ptr<Shard>> shards_;
  bool staging_ = false;  // any shard built with a staging buffer
  // Round-robin cursor for DrainRotate; relaxed atomics suffice — the
  // rotation is a fairness heuristic, not a correctness invariant.
  std::atomic<int64_t> rotate_{0};
  // Read-path branch counters (null without a metrics registry; see
  // docs/OBSERVABILITY.md): shared lock taken / epoch-validated pool hit
  // / epoch miss that fell back to blocking on the shared lock.
  Counter* m_read_shared_ = nullptr;
  Counter* m_read_epoch_hits_ = nullptr;
  Counter* m_read_epoch_fallbacks_ = nullptr;
  // Self-tuning (null unless Options::tuning.enabled). The controller
  // serializes its own ticks; decisions are applied here one shard lock
  // at a time.
  std::unique_ptr<AdaptiveController> tuner_;
  // Point commands completed — the cadence clock for MaybeTune (tick
  // and publish boundaries). Relaxed: an off-by-a-few tick is harmless.
  std::atomic<int64_t> command_seq_{0};
  // Per-shard dsf_command_accesses histogram handles (the J-headroom
  // signal); empty without a metrics registry.
  std::vector<Histogram*> m_shard_access_;
};

}  // namespace dsf

#endif  // DSF_SHARD_SHARDED_DENSE_FILE_H_
