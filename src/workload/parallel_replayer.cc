#include "workload/parallel_replayer.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <string>
#include <thread>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/thread_annotations.h"

namespace dsf {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedNs(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
      .count();
}

bool IsExpectedRejection(const Status& s) {
  return s.IsAlreadyExists() || s.IsNotFound() || s.IsCapacityExceeded();
}

// The one genuinely shared mutable state of a replay: the cross-thread
// unexpected-error tally. Guarded by an annotated mutex — the replay hot
// path never touches it; only the rare error branch does.
struct ErrorSink {
  mutable Mutex mu;
  int64_t count DSF_GUARDED_BY(mu) = 0;
  Status first DSF_GUARDED_BY(mu);

  void Record(const Status& status) DSF_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (count == 0) first = status;
    ++count;
  }
};

std::string ThreadLabel(int thread) {
  return "thread=\"" + std::to_string(thread) + "\"";
}

// Runs one thread's trace; counters land in *stats (thread-local),
// unexpected statuses in *errors (shared, locked), per-op latencies in
// *op_ns (this thread's own histogram series, or nullptr when no
// registry is installed).
void RunTrace(ShardedDenseFile& file, const Trace& trace,
              ReplayThreadStats* stats, ErrorSink* errors,
              Histogram* op_ns) {
  std::vector<Record> scan_out;  // reused across scan ops
  for (const Op& op : trace) {
    const Clock::time_point start = Clock::now();
    Status status = Status::OK();
    switch (op.kind) {
      case Op::Kind::kInsert:
        status = file.Insert(op.record);
        ++stats->inserts;
        break;
      case Op::Kind::kDelete:
        status = file.Delete(op.record.key);
        ++stats->deletes;
        break;
      case Op::Kind::kGet: {
        const StatusOr<Value> value = file.Get(op.record.key);
        status = value.status();
        ++stats->gets;
        break;
      }
      case Op::Kind::kScan:
        scan_out.clear();
        status = file.Scan(op.record.key, op.scan_hi, &scan_out);
        stats->scan_records += static_cast<int64_t>(scan_out.size());
        ++stats->scans;
        break;
    }
    const int64_t ns = ElapsedNs(start, Clock::now());
    ++stats->ops;
    stats->total_ns += ns;
    stats->max_op_ns = std::max(stats->max_op_ns, ns);
    if (op_ns != nullptr) op_ns->Observe(ns);
    if (!status.ok()) {
      if (IsExpectedRejection(status)) {
        ++stats->rejected;
      } else {
        // Fault-reachable path: a shard may carry an injected fault
        // policy or an audit hook. Report, never abort (the project
        // linter's check-on-fault-path rule).
        errors->Record(status);
      }
    }
  }
}

// Draws one thread's trace with the shared op mix; `next_key` supplies
// the thread's key distribution.
template <typename KeyFn>
Trace MixTrace(Rng& rng, int64_t ops_per_thread, double insert_fraction,
               double delete_fraction, double scan_fraction,
               int64_t scan_span, uint64_t seed, KeyFn next_key) {
  Trace trace;
  trace.reserve(static_cast<size_t>(ops_per_thread));
  for (int64_t i = 0; i < ops_per_thread; ++i) {
    const Key k = next_key(rng);
    const double roll = rng.NextDouble();
    Op op;
    op.record = Record{k, k ^ seed};
    if (roll < insert_fraction) {
      op.kind = Op::Kind::kInsert;
    } else if (roll < insert_fraction + delete_fraction) {
      op.kind = Op::Kind::kDelete;
      op.record.value = 0;
    } else if (roll < insert_fraction + delete_fraction + scan_fraction) {
      op.kind = Op::Kind::kScan;
      op.scan_hi = k + static_cast<Key>(scan_span);
    } else {
      op.kind = Op::Kind::kGet;
      op.record.value = 0;
    }
    trace.push_back(op);
  }
  return trace;
}

}  // namespace

ReplayThreadStats& ReplayThreadStats::operator+=(
    const ReplayThreadStats& other) {
  ops += other.ops;
  inserts += other.inserts;
  deletes += other.deletes;
  gets += other.gets;
  scans += other.scans;
  rejected += other.rejected;
  scan_records += other.scan_records;
  total_ns += other.total_ns;
  max_op_ns = std::max(max_op_ns, other.max_op_ns);
  return *this;
}

ReplayThreadStats ReplayResult::Aggregate() const {
  ReplayThreadStats total;
  for (const ReplayThreadStats& t : per_thread) total += t;
  return total;
}

double ReplayResult::OpsPerSecond() const {
  if (wall_seconds <= 0) return 0.0;
  return static_cast<double>(Aggregate().ops) / wall_seconds;
}

double ReplayResult::LogicalAccessesPerOp() const {
  const int64_t ops = Aggregate().ops;
  if (ops == 0) return 0.0;
  return static_cast<double>(io.TotalLogical()) / static_cast<double>(ops);
}

double ReplayResult::PhysicalAccessesPerOp() const {
  const int64_t ops = Aggregate().ops;
  if (ops == 0) return 0.0;
  return static_cast<double>(io.TotalAccesses()) / static_cast<double>(ops);
}

ReplayResult ParallelReplayer::Replay(ShardedDenseFile& file,
                                      const std::vector<Trace>& traces) {
  const int num_threads = options_.num_threads;
  DSF_CHECK(num_threads >= 1) << "replayer needs at least one thread";
  DSF_CHECK(static_cast<int>(traces.size()) == num_threads)
      << "need exactly one trace per thread";

  ReplayResult result;
  result.per_thread.resize(static_cast<size_t>(traces.size()));

  // Per-thread histogram series resolved up front: the worker hot path
  // never touches the registry map, only its own handle.
  std::vector<Histogram*> op_histograms(static_cast<size_t>(num_threads),
                                        nullptr);
  if (options_.metrics != nullptr) {
    for (int t = 0; t < num_threads; ++t) {
      op_histograms[static_cast<size_t>(t)] =
          options_.metrics->FindOrCreateHistogram(kMetricReplayOpNs,
                                                  ThreadLabel(t));
    }
  }
  const IoStats io_before = file.io_stats();

  // The barrier's completion step runs exactly once, when the last thread
  // arrives: that instant is the common start line.
  Clock::time_point start_time;
  std::barrier start_barrier(num_threads, [&start_time]() noexcept {
    start_time = Clock::now();
  });

  ErrorSink errors;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t]() {
      start_barrier.arrive_and_wait();
      RunTrace(file, traces[static_cast<size_t>(t)],
               &result.per_thread[static_cast<size_t>(t)], &errors,
               op_histograms[static_cast<size_t>(t)]);
    });
  }
  for (std::thread& t : threads) t.join();
  if (options_.flush_staging_at_end) {
    // Still inside the measured window: a staged replay pays for its
    // deferred writes before the clock stops (header comment).
    const Status flush = file.FlushStaging();
    if (!flush.ok()) errors.Record(flush);
  }
  result.wall_seconds =
      static_cast<double>(ElapsedNs(start_time, Clock::now())) * 1e-9;
  result.io = file.io_stats() - io_before;
  {
    MutexLock lock(errors.mu);
    result.unexpected_errors = errors.count;
    result.first_unexpected_error = errors.first;
  }
  return result;
}

std::vector<Trace> ParallelReplayer::DisjointUniformMixes(
    int num_threads, int64_t ops_per_thread, double insert_fraction,
    double delete_fraction, double scan_fraction, Key key_space,
    int64_t scan_span, uint64_t seed) {
  DSF_CHECK(num_threads >= 1) << "need at least one thread";
  DSF_CHECK(key_space >= static_cast<Key>(num_threads))
      << "key space too small to give every thread keys";
  std::vector<Trace> traces;
  traces.reserve(static_cast<size_t>(num_threads));
  const Key stride = static_cast<Key>(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    Rng rng(seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(t) + 1);
    // Keys for thread t: t+1, t+1+T, t+1+2T, ... up to key_space.
    const Key slots = (key_space - static_cast<Key>(t) - 1) / stride + 1;
    traces.push_back(MixTrace(
        rng, ops_per_thread, insert_fraction, delete_fraction,
        scan_fraction, scan_span, seed, [t, stride, slots](Rng& r) {
          return static_cast<Key>(t) + 1 + r.Uniform(slots) * stride;
        }));
  }
  return traces;
}

std::vector<Trace> ParallelReplayer::DisjointRangeMixes(
    int num_threads, int64_t ops_per_thread, double insert_fraction,
    double delete_fraction, double scan_fraction, Key key_space,
    int64_t scan_span, uint64_t seed) {
  DSF_CHECK(num_threads >= 1) << "need at least one thread";
  DSF_CHECK(key_space >= static_cast<Key>(num_threads))
      << "key space too small to give every thread a range";
  std::vector<Trace> traces;
  traces.reserve(static_cast<size_t>(num_threads));
  const Key span = key_space / static_cast<Key>(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    Rng rng(seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(t) + 1);
    // Thread t owns the contiguous range (t*span, (t+1)*span]; the last
    // thread also takes the remainder up to key_space.
    const Key lo = static_cast<Key>(t) * span;
    const Key width =
        (t == num_threads - 1) ? key_space - lo : span;
    traces.push_back(MixTrace(rng, ops_per_thread, insert_fraction,
                              delete_fraction, scan_fraction, scan_span,
                              seed, [lo, width](Rng& r) {
                                return lo + 1 + r.Uniform(width);
                              }));
  }
  return traces;
}

}  // namespace dsf
