// Plain-text serialization of operation traces.
//
// One line per op: "I <key> <value>", "D <key>", "G <key>",
// "S <lo> <hi>". Lets a failing fuzz run be saved and replayed as a
// deterministic regression input, and lets benches share workloads with
// external tools.

#ifndef DSF_WORKLOAD_TRACE_H_
#define DSF_WORKLOAD_TRACE_H_

#include <string>

#include "util/status.h"
#include "workload/workload.h"

namespace dsf {

// Renders a trace in the one-line-per-op format.
std::string SerializeTrace(const Trace& trace);

// Parses text produced by SerializeTrace. Blank lines and lines starting
// with '#' are skipped.
StatusOr<Trace> ParseTrace(const std::string& text);

Status WriteTraceFile(const Trace& trace, const std::string& path);
StatusOr<Trace> ReadTraceFile(const std::string& path);

}  // namespace dsf

#endif  // DSF_WORKLOAD_TRACE_H_
