#include "workload/trace.h"

#include <fstream>
#include <sstream>

namespace dsf {

std::string SerializeTrace(const Trace& trace) {
  std::ostringstream os;
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        os << "I " << op.record.key << " " << op.record.value << "\n";
        break;
      case Op::Kind::kDelete:
        os << "D " << op.record.key << "\n";
        break;
      case Op::Kind::kGet:
        os << "G " << op.record.key << "\n";
        break;
      case Op::Kind::kScan:
        os << "S " << op.record.key << " " << op.scan_hi << "\n";
        break;
    }
  }
  return os.str();
}

StatusOr<Trace> ParseTrace(const std::string& text) {
  Trace trace;
  std::istringstream is(text);
  std::string line;
  int64_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    Op op;
    auto fail = [&](const char* what) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_number) + ": " +
                                     what);
    };
    if (tag == "I") {
      op.kind = Op::Kind::kInsert;
      if (!(ls >> op.record.key >> op.record.value)) {
        return fail("expected 'I <key> <value>'");
      }
    } else if (tag == "D") {
      op.kind = Op::Kind::kDelete;
      if (!(ls >> op.record.key)) return fail("expected 'D <key>'");
    } else if (tag == "G") {
      op.kind = Op::Kind::kGet;
      if (!(ls >> op.record.key)) return fail("expected 'G <key>'");
    } else if (tag == "S") {
      op.kind = Op::Kind::kScan;
      if (!(ls >> op.record.key >> op.scan_hi)) {
        return fail("expected 'S <lo> <hi>'");
      }
    } else {
      return fail("unknown op tag");
    }
    trace.push_back(op);
  }
  return trace;
}

Status WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  out << SerializeTrace(trace);
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

StatusOr<Trace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTrace(buffer.str());
}

}  // namespace dsf
