// An in-memory oracle for differential testing.
//
// ReferenceModel mirrors the dense file's map semantics with a plain
// std::map. Property tests replay the same Trace against a structure and
// the model, asserting identical Status codes, lookup results and scan
// contents after every operation.

#ifndef DSF_WORKLOAD_REFERENCE_MODEL_H_
#define DSF_WORKLOAD_REFERENCE_MODEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "storage/record.h"
#include "util/status.h"
#include "workload/workload.h"

namespace dsf {

class ReferenceModel {
 public:
  // Same contracts as DenseFile: AlreadyExists on duplicate insert,
  // NotFound on absent delete/get, CapacityExceeded above `capacity`
  // (pass INT64_MAX for structures without a hard cap).
  explicit ReferenceModel(int64_t capacity = INT64_MAX)
      : capacity_(capacity) {}

  Status Insert(const Record& record);
  Status Delete(Key key);
  StatusOr<Record> Get(Key key) const;
  bool Contains(Key key) const { return map_.count(key) > 0; }

  std::vector<Record> Scan(Key lo, Key hi) const;
  std::vector<Record> ScanAll() const;

  int64_t size() const { return static_cast<int64_t>(map_.size()); }

  Status Load(const std::vector<Record>& records);

 private:
  int64_t capacity_;
  std::map<Key, Value> map_;
};

}  // namespace dsf

#endif  // DSF_WORKLOAD_REFERENCE_MODEL_H_
