// Adversarial workload generators for the self-tuning controller
// (tune/controller.h) and the adaptive-sweep bench.
//
// Three families, each attacking a different static configuration:
//
//   BucketAdversary — the Bulánek–Koucký–Saks online-labeling adversary
//     specialized to dense files: every insert lands at the midpoint of
//     the CURRENT minimum gap between live keys, so wherever records
//     have packed tightest, the next key goes exactly there. This is
//     the pattern behind the Omega(log^2 n) lower bound for dense
//     sequential maintenance — it forces maximal SHIFT/redistribution
//     work per command and collapses per-command access headroom, the
//     trigger signal for the J-headroom advisory.
//
//   DriftRamp — a hotspot window sliding linearly across the key space
//     over the trace. Any static frame split fitted to the window's
//     starting position goes stale; a controller following window
//     misses keeps the frames under the hotspot.
//
//   HotspotMigration — piecewise-stationary: all traffic concentrates
//     on one shard-sized region for a phase, then jumps to a disjoint
//     region. The worst static pick (all resources on one region) wins
//     phase one and loses every other; even splits waste most frames
//     every phase.
//
// All generators are deterministic under a fixed Rng seed (BKS's insert
// choice is fully deterministic — randomness only orders its deletes
// and background noise), so bench runs and tests replay identically.

#ifndef DSF_WORKLOAD_ADVERSARY_H_
#define DSF_WORKLOAD_ADVERSARY_H_

#include <cstdint>

#include "workload/workload.h"

namespace dsf {

// BKS bucket adversary over (lo, hi): seeds sentinels at lo and hi
// (never emitted), then each insert splits the minimum-width gap >= 2
// between live keys at its midpoint. Every delete_every-th op (0 = no
// deletes) removes a uniformly random live key instead, so the net
// size stays bounded while the dense packing persists. Stops early
// only if every gap closes (num_ops larger than the key range).
Trace BucketAdversary(int64_t num_ops, Key lo, Key hi,
                      int64_t delete_every, Rng& rng);

// Hotspot window of `window` keys sliding linearly from the bottom to
// the top of [1, key_space] across the trace: op i draws uniform from
// the window at position i. read_fraction of ops are Gets of earlier
// keys (cache pressure follows the window); every delete_every-th op
// (0 = none) deletes a random earlier insert to bound net growth.
Trace DriftRamp(int64_t num_ops, Key key_space, Key window,
                double read_fraction, int64_t delete_every, Rng& rng);

// num_phases equal-length phases; phase p confines 90% of its traffic
// to the p-th of num_phases disjoint slices of [1, key_space] (10%
// uniform background). Each phase mixes inserts, Gets of that phase's
// earlier inserts (read_fraction), and bounded deletes.
Trace HotspotMigration(int64_t num_ops, Key key_space, int num_phases,
                       double read_fraction, int64_t delete_every,
                       Rng& rng);

}  // namespace dsf

#endif  // DSF_WORKLOAD_ADVERSARY_H_
