#include "workload/adversary.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "util/check.h"

namespace dsf {

namespace {

// Value stored with every adversarial insert; the drivers only care
// about keys, and a constant keeps traces comparable across runs.
constexpr Value kAdversaryValue = 1;

Op InsertOp(Key key) {
  Op op;
  op.kind = Op::Kind::kInsert;
  op.record = Record{key, kAdversaryValue};
  return op;
}

Op DeleteOp(Key key) {
  Op op;
  op.kind = Op::Kind::kDelete;
  op.record = Record{key, 0};
  return op;
}

Op GetOp(Key key) {
  Op op;
  op.kind = Op::Kind::kGet;
  op.record = Record{key, 0};
  return op;
}

}  // namespace

Trace BucketAdversary(int64_t num_ops, Key lo, Key hi,
                      int64_t delete_every, Rng& rng) {
  DSF_CHECK(lo < hi) << "bucket adversary needs a non-empty open range";
  Trace trace;
  trace.reserve(static_cast<size_t>(num_ops));

  // Live keys including the two sentinels (never emitted as ops), and
  // the gap multiset keyed by (width, left endpoint): the adversary's
  // whole strategy is "split the narrowest gap at its midpoint", so the
  // minimum element is always the next target. Both structures stay in
  // lockstep: O(log n) per op.
  std::set<Key> live = {lo, hi};
  std::set<std::pair<Key, Key>> gaps = {{hi - lo, lo}};
  // Inserted (non-sentinel) keys, for random delete victims: a vector
  // with swap-remove keeps the draw O(1).
  std::vector<Key> inserted;

  for (int64_t i = 0; i < num_ops; ++i) {
    const bool wants_delete = delete_every > 0 && !inserted.empty() &&
                              (i + 1) % delete_every == 0;
    if (wants_delete) {
      const size_t victim_index =
          static_cast<size_t>(rng.Uniform(inserted.size()));
      const Key victim = inserted[victim_index];
      inserted[victim_index] = inserted.back();
      inserted.pop_back();
      // Merge the victim's two adjacent gaps back into one.
      const auto it = live.find(victim);
      const Key left = *std::prev(it);
      const Key right = *std::next(it);
      live.erase(it);
      gaps.erase({victim - left, left});
      gaps.erase({right - victim, victim});
      gaps.insert({right - left, left});
      trace.push_back(DeleteOp(victim));
      continue;
    }
    // Narrowest splittable gap: widths are the primary key, so advance
    // past width-1 gaps (no integer midpoint left) to the first >= 2.
    auto gap = gaps.begin();
    while (gap != gaps.end() && gap->first < 2) ++gap;
    if (gap == gaps.end()) break;  // range saturated
    const Key left = gap->second;
    const Key width = gap->first;
    const Key mid = left + width / 2;
    gaps.erase(gap);
    gaps.insert({mid - left, left});
    gaps.insert({left + width - mid, mid});
    live.insert(mid);
    inserted.push_back(mid);
    trace.push_back(InsertOp(mid));
  }
  return trace;
}

Trace DriftRamp(int64_t num_ops, Key key_space, Key window,
                double read_fraction, int64_t delete_every, Rng& rng) {
  DSF_CHECK(num_ops > 0);
  DSF_CHECK(key_space >= 2);
  window = std::min(window, key_space);
  if (window < 1) window = 1;
  Trace trace;
  trace.reserve(static_cast<size_t>(num_ops));
  std::vector<Key> inserted;
  const Key travel = key_space - window;  // window start's full excursion
  for (int64_t i = 0; i < num_ops; ++i) {
    if (delete_every > 0 && !inserted.empty() &&
        (i + 1) % delete_every == 0) {
      const size_t victim_index =
          static_cast<size_t>(rng.Uniform(inserted.size()));
      trace.push_back(DeleteOp(inserted[victim_index]));
      inserted[victim_index] = inserted.back();
      inserted.pop_back();
      continue;
    }
    // Window start slides linearly with trace progress.
    const Key base =
        1 + static_cast<Key>(static_cast<uint64_t>(travel) *
                             static_cast<uint64_t>(i) /
                             static_cast<uint64_t>(num_ops));
    const Key key =
        base + static_cast<Key>(rng.Uniform(static_cast<uint64_t>(window)));
    if (!inserted.empty() && rng.Bernoulli(read_fraction)) {
      // Read a recent insert — the tail of `inserted` trails the
      // window, so reads press on the same pages the writes do.
      const size_t span = std::min<size_t>(inserted.size(), 64);
      trace.push_back(
          GetOp(inserted[inserted.size() - 1 - rng.Uniform(span)]));
      continue;
    }
    trace.push_back(InsertOp(key));
    inserted.push_back(key);
  }
  return trace;
}

Trace HotspotMigration(int64_t num_ops, Key key_space, int num_phases,
                       double read_fraction, int64_t delete_every,
                       Rng& rng) {
  DSF_CHECK(num_ops > 0);
  DSF_CHECK(num_phases >= 1);
  DSF_CHECK(key_space >= static_cast<Key>(num_phases) * 2);
  Trace trace;
  trace.reserve(static_cast<size_t>(num_ops));
  const int64_t phase_len = std::max<int64_t>(1, num_ops / num_phases);
  const Key slice = key_space / static_cast<Key>(num_phases);
  std::vector<Key> phase_inserted;  // cleared at each migration
  int current_phase = -1;
  for (int64_t i = 0; i < num_ops; ++i) {
    const int phase =
        std::min(num_phases - 1, static_cast<int>(i / phase_len));
    if (phase != current_phase) {
      current_phase = phase;
      phase_inserted.clear();
    }
    if (delete_every > 0 && !phase_inserted.empty() &&
        (i + 1) % delete_every == 0) {
      const size_t victim_index =
          static_cast<size_t>(rng.Uniform(phase_inserted.size()));
      trace.push_back(DeleteOp(phase_inserted[victim_index]));
      phase_inserted[victim_index] = phase_inserted.back();
      phase_inserted.pop_back();
      continue;
    }
    if (!phase_inserted.empty() && rng.Bernoulli(read_fraction)) {
      trace.push_back(GetOp(phase_inserted[static_cast<size_t>(
          rng.Uniform(phase_inserted.size()))]));
      continue;
    }
    // 90% of traffic in the phase's slice, 10% uniform background.
    Key key;
    if (rng.Bernoulli(0.9)) {
      const Key base = 1 + slice * static_cast<Key>(phase);
      key = base + static_cast<Key>(rng.Uniform(static_cast<uint64_t>(
                       std::max<Key>(1, slice - 1))));
    } else {
      key = 1 + static_cast<Key>(
                    rng.Uniform(static_cast<uint64_t>(key_space)));
    }
    trace.push_back(InsertOp(key));
    phase_inserted.push_back(key);
  }
  return trace;
}

}  // namespace dsf
