#include "workload/workload.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace dsf {

std::vector<Record> MakeAscendingRecords(int64_t n, Key start, Key stride) {
  std::vector<Record> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const Key k = start + static_cast<Key>(i) * stride;
    out.push_back(Record{k, k});
  }
  return out;
}

std::vector<Record> MakeUniformRecords(int64_t n, Key key_space, Rng& rng) {
  DSF_CHECK(static_cast<uint64_t>(n) <= key_space)
      << "cannot draw " << n << " distinct keys from " << key_space;
  std::unordered_set<Key> seen;
  std::vector<Record> out;
  out.reserve(static_cast<size_t>(n));
  while (static_cast<int64_t>(out.size()) < n) {
    const Key k = rng.Uniform(key_space) + 1;
    if (seen.insert(k).second) out.push_back(Record{k, k});
  }
  std::sort(out.begin(), out.end(), RecordKeyLess);
  return out;
}

Trace UniformMix(int64_t num_ops, double insert_fraction,
                 double delete_fraction, Key key_space, Rng& rng) {
  Trace trace;
  trace.reserve(static_cast<size_t>(num_ops));
  for (int64_t i = 0; i < num_ops; ++i) {
    const double roll = rng.NextDouble();
    Op op;
    const Key k = rng.Uniform(key_space) + 1;
    op.record = Record{k, k};
    if (roll < insert_fraction) {
      op.kind = Op::Kind::kInsert;
    } else if (roll < insert_fraction + delete_fraction) {
      op.kind = Op::Kind::kDelete;
    } else {
      op.kind = Op::Kind::kGet;
    }
    trace.push_back(op);
  }
  return trace;
}

Trace AscendingInserts(int64_t num_ops, Key start, Key stride) {
  Trace trace;
  trace.reserve(static_cast<size_t>(num_ops));
  for (const Record& r : MakeAscendingRecords(num_ops, start, stride)) {
    trace.push_back(Op{Op::Kind::kInsert, r, 0});
  }
  return trace;
}

Trace DescendingInserts(int64_t num_ops, Key start) {
  DSF_CHECK(static_cast<uint64_t>(num_ops) <= start)
      << "descending run would underflow key 0";
  Trace trace;
  trace.reserve(static_cast<size_t>(num_ops));
  for (int64_t i = 0; i < num_ops; ++i) {
    const Key k = start - static_cast<Key>(i);
    trace.push_back(Op{Op::Kind::kInsert, Record{k, k}, 0});
  }
  return trace;
}

Trace HotspotSurge(int64_t num_ops, Key lo, Key hi, Rng& rng) {
  DSF_CHECK(lo <= hi) << "empty surge range";
  DSF_CHECK(static_cast<uint64_t>(num_ops) <= hi - lo + 1)
      << "surge range too small for distinct keys";
  std::unordered_set<Key> seen;
  Trace trace;
  trace.reserve(static_cast<size_t>(num_ops));
  while (static_cast<int64_t>(trace.size()) < num_ops) {
    const Key k = lo + rng.Uniform(hi - lo + 1);
    if (seen.insert(k).second) {
      trace.push_back(Op{Op::Kind::kInsert, Record{k, k}, 0});
    }
  }
  return trace;
}

Trace ZipfInserts(int64_t num_ops, Key key_space, double theta, Rng& rng) {
  const ZipfGenerator zipf(key_space, theta);
  Trace trace;
  trace.reserve(static_cast<size_t>(num_ops));
  for (int64_t i = 0; i < num_ops; ++i) {
    const Key k = zipf.Sample(rng) + 1;
    trace.push_back(Op{Op::Kind::kInsert, Record{k, k}, 0});
  }
  return trace;
}

Trace ZipfMix(int64_t num_ops, double insert_fraction, double delete_fraction,
              Key key_space, double theta, Rng& rng) {
  const ZipfGenerator zipf(key_space, theta);
  Trace trace;
  trace.reserve(static_cast<size_t>(num_ops));
  for (int64_t i = 0; i < num_ops; ++i) {
    const double roll = rng.NextDouble();
    Op op;
    const Key k = zipf.Sample(rng) + 1;
    op.record = Record{k, k};
    if (roll < insert_fraction) {
      op.kind = Op::Kind::kInsert;
    } else if (roll < insert_fraction + delete_fraction) {
      op.kind = Op::Kind::kDelete;
    } else {
      op.kind = Op::Kind::kGet;
    }
    trace.push_back(op);
  }
  return trace;
}

Trace SequentialGets(int64_t num_ops, Key key_space, Key start) {
  DSF_CHECK(key_space >= 1) << "empty key space";
  Trace trace;
  trace.reserve(static_cast<size_t>(num_ops));
  Key k = start;
  for (int64_t i = 0; i < num_ops; ++i) {
    trace.push_back(Op{Op::Kind::kGet, Record{k, 0}, 0});
    k = (k % key_space) + 1;  // 1..key_space, wrapping
  }
  return trace;
}

Trace HotspotChurn(int64_t num_batches, int64_t batch_size, Key pivot) {
  DSF_CHECK(static_cast<uint64_t>(batch_size) < pivot)
      << "churn batch would underflow key 0";
  Trace trace;
  trace.reserve(static_cast<size_t>(2 * num_batches * batch_size));
  for (int64_t b = 0; b < num_batches; ++b) {
    for (int64_t i = 0; i < batch_size; ++i) {
      const Key k = pivot - static_cast<Key>(i) - 1;
      trace.push_back(Op{Op::Kind::kInsert, Record{k, k}, 0});
    }
    for (int64_t i = 0; i < batch_size; ++i) {
      const Key k = pivot - static_cast<Key>(i) - 1;
      trace.push_back(Op{Op::Kind::kDelete, Record{k, 0}, 0});
    }
  }
  return trace;
}

}  // namespace dsf
