// ParallelReplayer — multi-threaded workload replay against a
// ShardedDenseFile.
//
// A fixed pool of threads replays one trace each: all threads block on a
// barrier, start together (the barrier's completion step records t0), and
// drive the file concurrently. Every counter is thread-local — per-thread
// op tallies and latency accumulators here, per-shard IoStats /
// CommandStats inside the file (single-writer under each shard's mutex) —
// so the hot path carries no atomics and no shared cache lines;
// aggregation is a plain summation after the join, and it is exact.
//
// Bounded per-operation worst-case cost is what makes this scheduling
// safe to reason about: no thread ever holds a shard lock for more than
// one command's O(log^2 (M/S) / (D-d)) page accesses, so tail latency
// under contention stays proportional to the per-command bound times the
// queue depth on the hottest shard.

#ifndef DSF_WORKLOAD_PARALLEL_REPLAYER_H_
#define DSF_WORKLOAD_PARALLEL_REPLAYER_H_

#include <cstdint>
#include <vector>

#include "shard/sharded_dense_file.h"
#include "storage/io_stats.h"
#include "util/status.h"
#include "workload/workload.h"

namespace dsf {

class MetricsRegistry;

// One replay thread's tallies. Owned and written by exactly one thread
// during the run; read only after the join.
struct ReplayThreadStats {
  int64_t ops = 0;
  int64_t inserts = 0;
  int64_t deletes = 0;
  int64_t gets = 0;
  int64_t scans = 0;
  // Commands whose Status was an expected workload rejection
  // (AlreadyExists / NotFound / CapacityExceeded). Anything else counts
  // into ReplayResult::unexpected_errors — never an abort: worker
  // threads are a fault-reachable path (a shard may carry an injected
  // fault policy), so errors are reported, not DSF_CHECKed.
  int64_t rejected = 0;
  int64_t scan_records = 0;  // records returned across all scans
  int64_t total_ns = 0;      // summed per-op latency
  int64_t max_op_ns = 0;     // worst single op

  ReplayThreadStats& operator+=(const ReplayThreadStats& other);
};

struct ReplayResult {
  std::vector<ReplayThreadStats> per_thread;
  double wall_seconds = 0;  // barrier release -> last thread done

  // The file's IoStats delta over exactly this replay (snapshot before
  // the threads start, subtracted after the join), so reports never
  // conflate the replay's traffic with load-phase traffic. Keep the two
  // sides of the split separate when reporting: logical_* counts are the
  // algorithm's accesses (the paper's cost metric), page_* / seeks are
  // what reached the device after the buffer pool — dividing logical ops
  // by physical seeks mixes incompatible units.
  IoStats io;

  // Statuses that were neither OK nor an expected workload rejection
  // (e.g. IoError from an injected fault, Corruption from an
  // audit_every_command shard). Collected across threads under an
  // annotated mutex; `first_unexpected_error` is the earliest one
  // recorded. Callers decide whether that fails the run.
  int64_t unexpected_errors = 0;
  Status first_unexpected_error;

  bool ok() const { return unexpected_errors == 0; }

  // Summation over per_thread (exact; see header comment).
  ReplayThreadStats Aggregate() const;
  double OpsPerSecond() const;

  // Per-op cost, each side of the logical/physical split on its own:
  // logical = TotalLogical() / ops (device-independent algorithmic
  // work), physical = TotalAccesses() / ops (post-cache device work).
  double LogicalAccessesPerOp() const;
  double PhysicalAccessesPerOp() const;
};

class ParallelReplayer {
 public:
  struct Options {
    int num_threads = 1;
    // When set, thread t observes each op's wall latency into the
    // kMetricReplayOpNs histogram labelled `thread="t"` — one series per
    // thread, resolved once before the threads start, so the hot path
    // costs one striped-atomic Observe per op and no registry lookups.
    MetricsRegistry* metrics = nullptr;
    // Drain every shard's ingest staging buffer after the workers join,
    // INSIDE the measured wall time: a staged run's throughput then pays
    // for making its writes durable, keeping staged-vs-unstaged replay
    // comparisons honest (see docs/INGEST.md). Flush errors count into
    // unexpected_errors like any worker-thread fault. No-op when the
    // file has no staging configured.
    bool flush_staging_at_end = true;
  };

  explicit ParallelReplayer(const Options& options) : options_(options) {}

  // Replays traces[t] on thread t (traces.size() must equal num_threads;
  // an empty trace idles its thread). Blocks until every thread joined.
  ReplayResult Replay(ShardedDenseFile& file,
                      const std::vector<Trace>& traces);

  // Per-thread mixed workloads for scaling runs and differential tests:
  // thread t draws ops from its own Rng(seed, t) over keys congruent to
  // t modulo num_threads. Thread key sets are disjoint, so the final file
  // contents are independent of the interleaving (each key's history is
  // one thread's program order) — while every thread still hits every
  // shard, since consecutive keys land in the same range. Fractions are
  // insert/delete/scan; the remainder are gets. Scans span scan_span keys.
  static std::vector<Trace> DisjointUniformMixes(
      int num_threads, int64_t ops_per_thread, double insert_fraction,
      double delete_fraction, double scan_fraction, Key key_space,
      int64_t scan_span, uint64_t seed);

  // Same op mix, but thread t draws keys uniformly from its own
  // contiguous slice of [1, key_space] — the partitioned-client shape of
  // sharded-system benchmarks (each client serves one key partition).
  // Disjoint like the modular variant, but with key locality: when
  // thread ranges align with shard ranges, threads touch disjoint shard
  // sets and never contend on a shard mutex or its device.
  static std::vector<Trace> DisjointRangeMixes(
      int num_threads, int64_t ops_per_thread, double insert_fraction,
      double delete_fraction, double scan_fraction, Key key_space,
      int64_t scan_span, uint64_t seed);

 private:
  Options options_;
};

}  // namespace dsf

#endif  // DSF_WORKLOAD_PARALLEL_REPLAYER_H_
