#include "workload/reference_model.h"

namespace dsf {

Status ReferenceModel::Insert(const Record& record) {
  if (size() >= capacity_) {
    return Status::CapacityExceeded("model at capacity");
  }
  const auto [it, inserted] = map_.emplace(record.key, record.value);
  (void)it;
  if (!inserted) return Status::AlreadyExists("key already present");
  return Status::OK();
}

Status ReferenceModel::Delete(Key key) {
  if (map_.erase(key) == 0) return Status::NotFound("key absent");
  return Status::OK();
}

StatusOr<Record> ReferenceModel::Get(Key key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("key absent");
  return Record{it->first, it->second};
}

std::vector<Record> ReferenceModel::Scan(Key lo, Key hi) const {
  std::vector<Record> out;
  for (auto it = map_.lower_bound(lo); it != map_.end() && it->first <= hi;
       ++it) {
    out.push_back(Record{it->first, it->second});
  }
  return out;
}

std::vector<Record> ReferenceModel::ScanAll() const {
  std::vector<Record> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.push_back(Record{k, v});
  return out;
}

Status ReferenceModel::Load(const std::vector<Record>& records) {
  for (const Record& r : records) {
    const Status s = Insert(r);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace dsf
