// Workload generation for tests and benches.
//
// A workload is a Trace: a flat vector of operations replayable against
// any of the structures (dense file, B+-tree, overflow file, naive
// sequential file) and against the ReferenceModel. Generators cover the
// paper's scenarios: uniform churn (the stationary regime of [Fr79,
// IKR80]), ascending batch appends, Zipf-skewed updates, and the hotspot
// *insertion surge* into a narrow key range that Section 1 argues breaks
// overflow chaining.

#ifndef DSF_WORKLOAD_WORKLOAD_H_
#define DSF_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "storage/record.h"
#include "util/random.h"

namespace dsf {

struct Op {
  enum class Kind { kInsert, kDelete, kGet, kScan };
  Kind kind = Kind::kInsert;
  Record record;   // kInsert: full record; kDelete/kGet: key; kScan: lo key
  Key scan_hi = 0; // kScan only
};

using Trace = std::vector<Op>;

// n records with keys start, start+stride, ... (value = key).
std::vector<Record> MakeAscendingRecords(int64_t n, Key start = 1,
                                         Key stride = 1);

// n records with distinct uniform keys in [1, key_space], ascending.
std::vector<Record> MakeUniformRecords(int64_t n, Key key_space, Rng& rng);

// Mixed point operations over [1, key_space]: fractions of inserts and
// deletes, remainder lookups. Keys uniform; duplicate inserts / missing
// deletes are legal no-ops for the drivers.
Trace UniformMix(int64_t num_ops, double insert_fraction,
                 double delete_fraction, Key key_space, Rng& rng);

// Pure ascending inserts (append workload).
Trace AscendingInserts(int64_t num_ops, Key start = 1, Key stride = 1);

// Pure descending inserts: every record lands at the current left
// frontier — a single-page hotspot, the harshest densifying pattern.
Trace DescendingInserts(int64_t num_ops, Key start);

// An insertion surge: num_ops inserts with distinct keys confined to the
// narrow range [lo, hi] (Section 1's overflow-killer).
Trace HotspotSurge(int64_t num_ops, Key lo, Key hi, Rng& rng);

// Inserts with Zipf(theta)-skewed keys over [1, key_space]; hot keys
// repeat, so drivers must tolerate AlreadyExists.
Trace ZipfInserts(int64_t num_ops, Key key_space, double theta, Rng& rng);

// Alternating insert/delete churn at a single hotspot: inserts a batch of
// descending keys below `pivot`, deletes it, repeats — maximal pressure
// on one calibrator region with zero net growth.
Trace HotspotChurn(int64_t num_batches, int64_t batch_size, Key pivot);

// Mixed point operations with Zipf(theta)-skewed keys over [1, key_space]:
// fractions of inserts and deletes, remainder lookups. Rank maps to key
// directly, so the hot set is a *contiguous* low-key range — the cache-
// friendly skew a buffer pool exploits (bench/cache_sweep). Duplicate
// inserts / missing deletes are legal no-ops for the drivers.
Trace ZipfMix(int64_t num_ops, double insert_fraction, double delete_fraction,
              Key key_space, double theta, Rng& rng);

// Pure lookups walking [1, key_space] in ascending key order, wrapping
// around — the fully sequential retrieval pattern (every next key lives
// on the same or the adjacent page).
Trace SequentialGets(int64_t num_ops, Key key_space, Key start = 1);

}  // namespace dsf

#endif  // DSF_WORKLOAD_WORKLOAD_H_
