#include "baseline/naive_sequential.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "util/check.h"
#include "util/math.h"

namespace dsf {

StatusOr<std::unique_ptr<NaiveSequentialFile>> NaiveSequentialFile::Create(
    const Options& options) {
  if (options.num_pages < 1) {
    return Status::InvalidArgument("num_pages must be >= 1");
  }
  if (options.page_capacity < 1) {
    return Status::InvalidArgument("page_capacity must be >= 1");
  }
  std::unique_ptr<NaiveSequentialFile> file(
      new NaiveSequentialFile(options));
  file->fences_.assign(static_cast<size_t>(options.num_pages), 0);
  return file;
}

int64_t NaiveSequentialFile::UsedPages() const {
  return DivCeil(size_, options_.page_capacity);
}

Address NaiveSequentialFile::PageForKey(Key key) const {
  const int64_t used = UsedPages();
  if (used == 0) return 0;
  // First used page whose max key is >= key.
  int64_t lo = 0;
  int64_t hi = used - 1;
  if (fences_[static_cast<size_t>(hi)] < key) return 0;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (fences_[static_cast<size_t>(mid)] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

void NaiveSequentialFile::RefreshFence(Address page) {
  const Page& p = file_.Peek(page);
  fences_[static_cast<size_t>(page - 1)] = p.empty() ? 0 : p.MaxKey();
}

Status NaiveSequentialFile::BulkLoad(const std::vector<Record>& records) {
  const int64_t n = static_cast<int64_t>(records.size());
  if (n > options_.num_pages * options_.page_capacity) {
    return Status::CapacityExceeded("bulk load exceeds file capacity");
  }
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i - 1].key >= records[i].key) {
      return Status::InvalidArgument(
          "bulk load records must be strictly ascending by key");
    }
  }
  int64_t offset = 0;
  for (Address page = 1; page <= options_.num_pages; ++page) {
    // lint:allow(raw-page-io): bulk-load layout is setup, unaccounted.
    Page& p = file_.RawPage(page);
    p.TakeAll();
    const int64_t take = std::min(options_.page_capacity, n - offset);
    if (take > 0) {
      p.AppendHigh(std::vector<Record>(records.begin() + offset,
                                       records.begin() + offset + take));
      offset += take;
    }
    RefreshFence(page);
  }
  size_ = n;
  file_.ResetStats();
  return Status::OK();
}

Status NaiveSequentialFile::Insert(const Record& record) {
  if (size_ >= options_.num_pages * options_.page_capacity) {
    return Status::CapacityExceeded("file full");
  }
  Address target = PageForKey(record.key);
  if (target == 0) target = std::max<int64_t>(1, UsedPages());

  StatusOr<const Page*> read = file_.TryRead(target);
  DSF_RETURN_IF_ERROR(read.status());
  std::vector<Record> records = (*read)->records();
  const auto it = std::lower_bound(records.begin(), records.end(), record,
                                   RecordKeyLess);
  if (it != records.end() && it->key == record.key) {
    return Status::AlreadyExists("key already present");
  }
  records.insert(it, record);

  // Ripple the overflowing record rightward until a page has room. With
  // full packing that means rewriting every page to the right: the O(N/D)
  // update cost of a classical sequential file.
  Address cur = target;
  std::optional<Record> carry;
  for (;;) {
    if (static_cast<int64_t>(records.size()) > options_.page_capacity) {
      carry = records.back();
      records.pop_back();
    }
    StatusOr<Page*> w = file_.TryWrite(cur);
    DSF_RETURN_IF_ERROR(w.status());
    (*w)->TakeAll();
    (*w)->AppendHigh(records);
    RefreshFence(cur);
    if (!carry.has_value()) break;
    ++cur;
    DSF_CHECK(cur <= options_.num_pages) << "ripple ran off the file";
    StatusOr<const Page*> next = file_.TryRead(cur);
    DSF_RETURN_IF_ERROR(next.status());
    records = (*next)->records();
    records.insert(records.begin(), *carry);
    carry.reset();
  }
  ++size_;
  return Status::OK();
}

Status NaiveSequentialFile::Delete(Key key) {
  const Address target = PageForKey(key);
  if (target == 0) return Status::NotFound("key absent");
  StatusOr<const Page*> read = file_.TryRead(target);
  DSF_RETURN_IF_ERROR(read.status());
  std::vector<Record> records = (*read)->records();
  const auto it = std::lower_bound(records.begin(), records.end(),
                                   Record{key, 0}, RecordKeyLess);
  if (it == records.end() || it->key != key) {
    return Status::NotFound("key absent");
  }
  records.erase(it);

  // Pull one record leftward from every page to the right to restore full
  // packing.
  const int64_t last_used = UsedPages();
  for (Address cur = target; cur < last_used; ++cur) {
    StatusOr<const Page*> next_read = file_.TryRead(cur + 1);
    DSF_RETURN_IF_ERROR(next_read.status());
    const std::vector<Record> next = (*next_read)->records();
    records.push_back(next.front());
    StatusOr<Page*> w = file_.TryWrite(cur);
    DSF_RETURN_IF_ERROR(w.status());
    (*w)->TakeAll();
    (*w)->AppendHigh(records);
    RefreshFence(cur);
    records.assign(next.begin() + 1, next.end());
  }
  StatusOr<Page*> w = file_.TryWrite(last_used);
  DSF_RETURN_IF_ERROR(w.status());
  (*w)->TakeAll();
  (*w)->AppendHigh(records);
  RefreshFence(last_used);
  --size_;
  return Status::OK();
}

StatusOr<Record> NaiveSequentialFile::Get(Key key) {
  const Address target = PageForKey(key);
  if (target == 0) return Status::NotFound("key absent");
  StatusOr<const Page*> page = file_.TryRead(target);
  DSF_RETURN_IF_ERROR(page.status());
  return (*page)->Find(key);
}

bool NaiveSequentialFile::Contains(Key key) { return Get(key).ok(); }

Status NaiveSequentialFile::Scan(Key lo, Key hi, std::vector<Record>* out) {
  DSF_CHECK(out != nullptr) << "Scan output vector is null";
  if (lo > hi) return Status::OK();
  Address page = PageForKey(lo);
  if (page == 0) return Status::OK();
  const int64_t used = UsedPages();
  for (; page <= used; ++page) {
    StatusOr<const Page*> p = file_.TryRead(page);
    DSF_RETURN_IF_ERROR(p.status());
    for (const Record& r : (*p)->records()) {
      if (r.key < lo) continue;
      if (r.key > hi) return Status::OK();
      out->push_back(r);
    }
  }
  return Status::OK();
}

StatusOr<std::vector<Record>> NaiveSequentialFile::ScanAll() {
  std::vector<Record> out;
  DSF_RETURN_IF_ERROR(Scan(0, std::numeric_limits<Key>::max(), &out));
  return out;
}

Status NaiveSequentialFile::ValidateInvariants() const {
  const int64_t used = UsedPages();
  int64_t total = 0;
  for (Address page = 1; page <= options_.num_pages; ++page) {
    const Page& p = file_.Peek(page);
    if (page < used &&
        static_cast<int64_t>(p.size()) != options_.page_capacity) {
      return Status::Corruption("interior page not fully packed");
    }
    if (page > used && !p.empty()) {
      return Status::Corruption("records beyond the packed prefix");
    }
    if (!p.empty() &&
        fences_[static_cast<size_t>(page - 1)] != p.MaxKey()) {
      return Status::Corruption("stale fence");
    }
    total += p.size();
  }
  if (total != size_) return Status::Corruption("size counter mismatch");
  if (!file_.GloballyOrdered()) {
    return Status::Corruption("records out of order");
  }
  return Status::OK();
}

}  // namespace dsf
