#include "baseline/overflow_file.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace dsf {

StatusOr<std::unique_ptr<OverflowFile>> OverflowFile::Create(
    const Options& options) {
  if (options.num_primary_pages < 1) {
    return Status::InvalidArgument("need at least one primary page");
  }
  if (options.page_capacity < 1) {
    return Status::InvalidArgument("page_capacity must be positive");
  }
  return std::unique_ptr<OverflowFile>(new OverflowFile(options));
}

OverflowFile::OverflowFile(const Options& options) : options_(options) {
  buckets_.resize(static_cast<size_t>(options.num_primary_pages));
  // Until a bulk load fixes real fences, everything routes to the last
  // bucket (fences are "largest key handled by this bucket").
  fences_.assign(static_cast<size_t>(options.num_primary_pages),
                 std::numeric_limits<Key>::max());
}

Status OverflowFile::BulkLoad(const std::vector<Record>& records) {
  const int64_t n = static_cast<int64_t>(records.size());
  const int64_t m = options_.num_primary_pages;
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i - 1].key >= records[i].key) {
      return Status::InvalidArgument(
          "bulk load records must be strictly ascending by key");
    }
  }
  if (n > m * options_.page_capacity) {
    return Status::CapacityExceeded("bulk load exceeds primary capacity");
  }
  buckets_.assign(static_cast<size_t>(m), Bucket{});
  overflow_pages_.clear();
  int64_t offset = 0;
  for (int64_t b = 0; b < m; ++b) {
    const int64_t end = (b + 1) * n / m;
    buckets_[static_cast<size_t>(b)].primary.assign(records.begin() + offset,
                                                    records.begin() + end);
    // Upper fence: the last key here; empty buckets inherit the previous
    // fence so they receive nothing until the range splits around them.
    if (end > offset) {
      fences_[static_cast<size_t>(b)] = records[static_cast<size_t>(end - 1)].key;
    } else {
      fences_[static_cast<size_t>(b)] =
          b > 0 ? fences_[static_cast<size_t>(b - 1)] : 0;
    }
    offset = end;
  }
  fences_[static_cast<size_t>(m - 1)] = std::numeric_limits<Key>::max();
  size_ = n;
  tracker_.Reset();
  return Status::OK();
}

int64_t OverflowFile::BucketFor(Key key) const {
  // First bucket whose upper fence is >= key.
  const auto it = std::lower_bound(fences_.begin(), fences_.end(), key);
  DSF_DCHECK(it != fences_.end()) << "fence table must end at Key max";
  return static_cast<int64_t>(it - fences_.begin());
}

Status OverflowFile::Insert(const Record& record) {
  const int64_t b = BucketFor(record.key);
  Bucket& bucket = buckets_[static_cast<size_t>(b)];
  tracker_.OnAccess(b + 1, /*is_write=*/false);
  const auto primary_it =
      std::lower_bound(bucket.primary.begin(), bucket.primary.end(), record,
                       RecordKeyLess);
  if (primary_it != bucket.primary.end() && primary_it->key == record.key) {
    return Status::AlreadyExists("key already present");
  }
  // A duplicate may hide anywhere in the chain; check while also noting
  // the first page with a free slot.
  int64_t slot_page = -1;
  for (const int64_t page_index : bucket.chain) {
    const OverflowPage& page =
        overflow_pages_[static_cast<size_t>(page_index)];
    tracker_.OnAccess(OverflowAddress(page_index), /*is_write=*/false);
    for (const Record& r : page.records) {
      if (r.key == record.key) {
        return Status::AlreadyExists("key already present");
      }
    }
    if (slot_page < 0 && static_cast<int64_t>(page.records.size()) <
                             options_.page_capacity) {
      slot_page = page_index;
    }
  }

  if (static_cast<int64_t>(bucket.primary.size()) < options_.page_capacity) {
    bucket.primary.insert(primary_it, record);
    tracker_.OnAccess(b + 1, /*is_write=*/true);
  } else if (slot_page >= 0) {
    OverflowPage& page = overflow_pages_[static_cast<size_t>(slot_page)];
    const auto it = std::lower_bound(page.records.begin(), page.records.end(),
                                     record, RecordKeyLess);
    page.records.insert(it, record);
    tracker_.OnAccess(OverflowAddress(slot_page), /*is_write=*/true);
  } else {
    const int64_t page_index = static_cast<int64_t>(overflow_pages_.size());
    overflow_pages_.push_back(OverflowPage{{record}});
    bucket.chain.push_back(page_index);
    tracker_.OnAccess(OverflowAddress(page_index), /*is_write=*/true);
  }
  ++size_;
  return Status::OK();
}

Status OverflowFile::Delete(Key key) {
  const int64_t b = BucketFor(key);
  Bucket& bucket = buckets_[static_cast<size_t>(b)];
  tracker_.OnAccess(b + 1, /*is_write=*/false);
  const auto primary_it =
      std::lower_bound(bucket.primary.begin(), bucket.primary.end(),
                       Record{key, 0}, RecordKeyLess);
  if (primary_it != bucket.primary.end() && primary_it->key == key) {
    bucket.primary.erase(primary_it);
    tracker_.OnAccess(b + 1, /*is_write=*/true);
    --size_;
    return Status::OK();
  }
  for (const int64_t page_index : bucket.chain) {
    OverflowPage& page = overflow_pages_[static_cast<size_t>(page_index)];
    tracker_.OnAccess(OverflowAddress(page_index), /*is_write=*/false);
    for (auto it = page.records.begin(); it != page.records.end(); ++it) {
      if (it->key == key) {
        page.records.erase(it);  // holes are never compacted
        tracker_.OnAccess(OverflowAddress(page_index), /*is_write=*/true);
        --size_;
        return Status::OK();
      }
    }
  }
  return Status::NotFound("key absent");
}

StatusOr<Record> OverflowFile::Get(Key key) {
  const int64_t b = BucketFor(key);
  const Bucket& bucket = buckets_[static_cast<size_t>(b)];
  tracker_.OnAccess(b + 1, /*is_write=*/false);
  const auto it = std::lower_bound(bucket.primary.begin(),
                                   bucket.primary.end(), Record{key, 0},
                                   RecordKeyLess);
  if (it != bucket.primary.end() && it->key == key) return *it;
  for (const int64_t page_index : bucket.chain) {
    const OverflowPage& page =
        overflow_pages_[static_cast<size_t>(page_index)];
    tracker_.OnAccess(OverflowAddress(page_index), /*is_write=*/false);
    for (const Record& r : page.records) {
      if (r.key == key) return r;
    }
  }
  return Status::NotFound("key absent");
}

bool OverflowFile::Contains(Key key) { return Get(key).ok(); }

std::vector<Record> OverflowFile::ReadBucket(int64_t b) {
  const Bucket& bucket = buckets_[static_cast<size_t>(b)];
  tracker_.OnAccess(b + 1, /*is_write=*/false);
  std::vector<Record> merged = bucket.primary;
  for (const int64_t page_index : bucket.chain) {
    const OverflowPage& page =
        overflow_pages_[static_cast<size_t>(page_index)];
    tracker_.OnAccess(OverflowAddress(page_index), /*is_write=*/false);
    merged.insert(merged.end(), page.records.begin(), page.records.end());
  }
  std::sort(merged.begin(), merged.end(), RecordKeyLess);
  return merged;
}

Status OverflowFile::Scan(Key lo, Key hi, std::vector<Record>* out) {
  DSF_CHECK(out != nullptr) << "Scan output vector is null";
  if (lo > hi) return Status::OK();
  for (int64_t b = BucketFor(lo); b < options_.num_primary_pages; ++b) {
    if (b > 0 && fences_[static_cast<size_t>(b - 1)] > hi) break;
    const Bucket& bucket = buckets_[static_cast<size_t>(b)];
    if (bucket.primary.empty() && bucket.chain.empty()) continue;
    for (const Record& r : ReadBucket(b)) {
      if (r.key < lo) continue;
      if (r.key > hi) return Status::OK();
      out->push_back(r);
    }
  }
  return Status::OK();
}

std::vector<Record> OverflowFile::ScanAll() {
  std::vector<Record> out;
  const Status s = Scan(0, std::numeric_limits<Key>::max(), &out);
  DSF_CHECK(s.ok()) << "full scan failed";
  return out;
}

OverflowFile::ChainStats OverflowFile::chain_stats() const {
  ChainStats cs;
  cs.overflow_pages = static_cast<int64_t>(overflow_pages_.size());
  int64_t total_chain = 0;
  for (const Bucket& bucket : buckets_) {
    const int64_t len = static_cast<int64_t>(bucket.chain.size());
    total_chain += len;
    cs.max_chain_length = std::max(cs.max_chain_length, len);
  }
  cs.mean_chain_length = static_cast<double>(total_chain) /
                         static_cast<double>(buckets_.size());
  for (const OverflowPage& page : overflow_pages_) {
    cs.overflow_records += static_cast<int64_t>(page.records.size());
  }
  return cs;
}

Status OverflowFile::ValidateInvariants() const {
  int64_t total = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const Bucket& bucket = buckets_[b];
    const Key upper = fences_[b];
    const Key lower = b > 0 ? fences_[b - 1] : 0;
    if (static_cast<int64_t>(bucket.primary.size()) >
        options_.page_capacity) {
      return Status::Corruption("primary page overflow");
    }
    for (size_t i = 1; i < bucket.primary.size(); ++i) {
      if (bucket.primary[i - 1].key >= bucket.primary[i].key) {
        return Status::Corruption("primary page out of order");
      }
    }
    auto in_range = [&](Key k) {
      return (b == 0 || k > lower) && k <= upper;
    };
    for (const Record& r : bucket.primary) {
      if (!in_range(r.key)) {
        return Status::Corruption("record outside its bucket's fences");
      }
    }
    total += static_cast<int64_t>(bucket.primary.size());
    for (const int64_t page_index : bucket.chain) {
      const OverflowPage& page =
          overflow_pages_[static_cast<size_t>(page_index)];
      if (static_cast<int64_t>(page.records.size()) >
          options_.page_capacity) {
        return Status::Corruption("overflow page overfull");
      }
      for (const Record& r : page.records) {
        if (!in_range(r.key)) {
          return Status::Corruption("chained record outside fences");
        }
      }
      total += static_cast<int64_t>(page.records.size());
    }
  }
  if (total != size_) return Status::Corruption("size counter mismatch");
  return Status::OK();
}

}  // namespace dsf
