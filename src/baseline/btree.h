// A disk-oriented B+-tree baseline.
//
// The paper's Sections 4-5 position CONTROL 2 against B-trees: B-trees
// update in O(log N) page accesses, but stream retrieval of consecutive
// keys suffers because logically adjacent leaves end up at scattered page
// addresses ("much disk arm movement"). This baseline makes that concrete:
// every node access is charged through the same AccessTracker cost model
// as the dense file, with the node id as its page address, so leaf
// scatter shows up as seeks in the stats.
//
// Structure: classic B+-tree — records only in leaves, separator keys in
// internal nodes, leaves doubly linked for range scans, split on
// overflow, borrow/merge on underflow. Node ids from deleted nodes are
// recycled (as a real pager would), which further scatters the leaf
// layout over time.

#ifndef DSF_BASELINE_BTREE_H_
#define DSF_BASELINE_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/io_stats.h"
#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class BTree {
 public:
  struct Options {
    // Records per leaf page. Match the dense file's D for fair accounting.
    int64_t leaf_capacity = 64;
    // Maximum children per internal node.
    int64_t internal_fanout = 64;
  };

  static StatusOr<std::unique_ptr<BTree>> Create(const Options& options);

  Status Insert(const Record& record);
  Status Delete(Key key);
  StatusOr<Record> Get(Key key);
  bool Contains(Key key);

  // Stream retrieval along the leaf chain.
  Status Scan(Key lo, Key hi, std::vector<Record>* out);
  std::vector<Record> ScanAll();

  // Builds the tree bottom-up from ascending records with consecutive
  // leaf ids (the best possible layout). Unaccounted; resets stats.
  Status BulkLoad(const std::vector<Record>& records);

  int64_t size() const { return size_; }
  int64_t height() const;       // 1 for a lone leaf
  int64_t num_nodes() const;    // live nodes
  IoStats stats() const { return tracker_.stats(); }
  void ResetStats() { tracker_.Reset(); }

  // Structural checks: key order, separator correctness, occupancy
  // bounds, uniform leaf depth, leaf-chain consistency.
  Status ValidateInvariants() const;

 private:
  struct Node {
    bool is_leaf = true;
    bool free = false;
    std::vector<Key> keys;          // internal: children.size()-1 separators
    std::vector<int64_t> children;  // internal only
    std::vector<Record> records;    // leaf only
    int64_t next_leaf = -1;
    int64_t prev_leaf = -1;
  };

  explicit BTree(const Options& options) : options_(options) {}

  int64_t AllocNode(bool is_leaf);
  void FreeNode(int64_t id);
  Node& Access(int64_t id, bool is_write);

  int64_t MinLeafRecords() const { return options_.leaf_capacity / 2; }
  int64_t MinChildren() const { return (options_.internal_fanout + 1) / 2; }

  // Descends to the leaf covering `key`, appending the visited node ids
  // (root first) with accounted reads.
  int64_t DescendToLeaf(Key key, std::vector<int64_t>* path);

  // Re-establishes bounds after an insert overflowed `path.back()`.
  void SplitUpward(std::vector<int64_t>& path);
  // Re-establishes bounds after a delete underflowed `path.back()`.
  void RebalanceUpward(std::vector<int64_t>& path);

  Status ValidateSubtree(int64_t id, int64_t depth, int64_t leaf_depth,
                         bool is_root, Key* min_key, Key* max_key) const;

  Options options_;
  std::vector<Node> nodes_;
  std::vector<int64_t> free_list_;
  int64_t root_ = -1;
  int64_t size_ = 0;
  AccessTracker tracker_;
};

}  // namespace dsf

#endif  // DSF_BASELINE_BTREE_H_
