// The classical fully-packed sequential file — the paper's strawman.
//
// Records are packed D per page from page 1 with no gaps, so a point
// lookup is one page read (fences are in memory, as for the dense file),
// and a stream retrieval is perfectly sequential — but every insert or
// delete must ripple records across all pages to the right of the
// touched position: O(N/D) page accesses per update. This is the
// "complete reorganization" cost that motivates (d,D)-dense files.

#ifndef DSF_BASELINE_NAIVE_SEQUENTIAL_H_
#define DSF_BASELINE_NAIVE_SEQUENTIAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page_file.h"
#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class NaiveSequentialFile {
 public:
  struct Options {
    int64_t num_pages = 0;      // M
    int64_t page_capacity = 0;  // D
  };

  static StatusOr<std::unique_ptr<NaiveSequentialFile>> Create(
      const Options& options);

  Status BulkLoad(const std::vector<Record>& records);

  // Updates and queries surface page faults as kIoError. The ripple
  // rewrites make no crash-consistency promise (this is the strawman the
  // dense file improves on); a mid-ripple fault can leave the packing
  // invariant broken, which ValidateInvariants reports.
  Status Insert(const Record& record);
  Status Delete(Key key);
  StatusOr<Record> Get(Key key);
  bool Contains(Key key);
  Status Scan(Key lo, Key hi, std::vector<Record>* out);
  StatusOr<std::vector<Record>> ScanAll();

  int64_t size() const { return size_; }
  IoStats stats() const { return file_.stats(); }
  void ResetStats() { file_.ResetStats(); }

  // Packing, order, and fence consistency.
  Status ValidateInvariants() const;

 private:
  explicit NaiveSequentialFile(const Options& options)
      : options_(options),
        file_(options.num_pages, options.page_capacity) {}

  int64_t UsedPages() const;
  // Page (1-based) holding the first key >= `key`; 0 when key exceeds all.
  Address PageForKey(Key key) const;
  void RefreshFence(Address page);

  Options options_;
  PageFile file_;
  std::vector<Key> fences_;  // max key per used page, in memory
  int64_t size_ = 0;
};

}  // namespace dsf

#endif  // DSF_BASELINE_NAIVE_SEQUENTIAL_H_
