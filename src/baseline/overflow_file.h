// A sequential file maintained with overflow chaining — the conventional
// technique the paper's introduction (after Wiederhold) argues is
// unsuitable for dynamic sequential files.
//
// Layout: M primary pages, loaded in key order, plus an overflow area
// whose pages are allocated on demand at addresses M+1, M+2, ... Each
// primary page owns a chain of overflow pages. An insert that misses free
// space in its primary page appends to the chain; nothing is ever
// rebalanced, so a surge of inserts into a narrow key range grows one
// chain without bound. Searches read the primary page plus its whole
// chain; range scans must merge each bucket's chain — every chain hop is
// a seek to the overflow area. Bench E7 measures exactly this decay
// against CONTROL 2.

#ifndef DSF_BASELINE_OVERFLOW_FILE_H_
#define DSF_BASELINE_OVERFLOW_FILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/io_stats.h"
#include "storage/record.h"
#include "util/status.h"

namespace dsf {

class OverflowFile {
 public:
  struct Options {
    int64_t num_primary_pages = 0;  // M
    int64_t page_capacity = 0;      // D, for both primary and overflow pages
  };

  struct ChainStats {
    int64_t overflow_pages = 0;
    int64_t max_chain_length = 0;   // in pages
    double mean_chain_length = 0.0;
    int64_t overflow_records = 0;
  };

  static StatusOr<std::unique_ptr<OverflowFile>> Create(
      const Options& options);

  // Distributes ascending records over the primary pages at uniform
  // density (same precondition as the dense file). Unaccounted.
  Status BulkLoad(const std::vector<Record>& records);

  Status Insert(const Record& record);
  Status Delete(Key key);
  StatusOr<Record> Get(Key key);
  bool Contains(Key key);

  // In-order scan; each bucket merges its primary page with its chain.
  Status Scan(Key lo, Key hi, std::vector<Record>* out);
  std::vector<Record> ScanAll();

  int64_t size() const { return size_; }
  IoStats stats() const { return tracker_.stats(); }
  void ResetStats() { tracker_.Reset(); }
  ChainStats chain_stats() const;

  Status ValidateInvariants() const;

 private:
  // A bucket: one primary page plus its overflow chain. Pages hold
  // records sorted within the page; the chain as a whole is unsorted
  // (classic overflow behaviour).
  struct OverflowPage {
    std::vector<Record> records;
  };
  struct Bucket {
    std::vector<Record> primary;
    std::vector<int64_t> chain;  // indices into overflow_pages_
  };

  explicit OverflowFile(const Options& options);

  // Bucket whose key range covers `key` (via the in-memory fence array,
  // mirroring the dense file's in-memory calibrator).
  int64_t BucketFor(Key key) const;
  int64_t OverflowAddress(int64_t overflow_index) const {
    return options_.num_primary_pages + 1 + overflow_index;
  }
  // All records of a bucket, merged and sorted, with accounted reads.
  std::vector<Record> ReadBucket(int64_t b);

  Options options_;
  std::vector<Bucket> buckets_;
  std::vector<OverflowPage> overflow_pages_;
  // fences_[b] = largest key routed to bucket b (upper fence).
  std::vector<Key> fences_;
  int64_t size_ = 0;
  AccessTracker tracker_;
};

}  // namespace dsf

#endif  // DSF_BASELINE_OVERFLOW_FILE_H_
