#include "baseline/btree.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/math.h"

namespace dsf {

StatusOr<std::unique_ptr<BTree>> BTree::Create(const Options& options) {
  if (options.leaf_capacity < 2) {
    return Status::InvalidArgument("leaf_capacity must be >= 2");
  }
  if (options.internal_fanout < 3) {
    return Status::InvalidArgument("internal_fanout must be >= 3");
  }
  return std::unique_ptr<BTree>(new BTree(options));
}

int64_t BTree::AllocNode(bool is_leaf) {
  int64_t id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<int64_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& n = nodes_[static_cast<size_t>(id)];
  n = Node{};
  n.is_leaf = is_leaf;
  return id;
}

void BTree::FreeNode(int64_t id) {
  nodes_[static_cast<size_t>(id)] = Node{};
  nodes_[static_cast<size_t>(id)].free = true;
  free_list_.push_back(id);
}

BTree::Node& BTree::Access(int64_t id, bool is_write) {
  tracker_.OnAccess(id, is_write);
  return nodes_[static_cast<size_t>(id)];
}

int64_t BTree::DescendToLeaf(Key key, std::vector<int64_t>* path) {
  DSF_CHECK(root_ >= 0) << "descend on empty tree";
  int64_t cur = root_;
  for (;;) {
    const Node& n = Access(cur, /*is_write=*/false);
    path->push_back(cur);
    if (n.is_leaf) return cur;
    const auto it = std::upper_bound(n.keys.begin(), n.keys.end(), key);
    const size_t child_index =
        static_cast<size_t>(it - n.keys.begin());
    cur = n.children[child_index];
  }
}

Status BTree::Insert(const Record& record) {
  if (root_ < 0) {
    root_ = AllocNode(/*is_leaf=*/true);
    Node& leaf = Access(root_, /*is_write=*/true);
    leaf.records.push_back(record);
    ++size_;
    return Status::OK();
  }
  std::vector<int64_t> path;
  const int64_t leaf_id = DescendToLeaf(record.key, &path);
  Node& leaf = Access(leaf_id, /*is_write=*/true);
  const auto it = std::lower_bound(leaf.records.begin(), leaf.records.end(),
                                   record, RecordKeyLess);
  if (it != leaf.records.end() && it->key == record.key) {
    return Status::AlreadyExists("key already present");
  }
  leaf.records.insert(it, record);
  ++size_;
  if (static_cast<int64_t>(leaf.records.size()) > options_.leaf_capacity) {
    SplitUpward(path);
  }
  return Status::OK();
}

void BTree::SplitUpward(std::vector<int64_t>& path) {
  int64_t cur = path.back();
  path.pop_back();
  for (;;) {
    Node& n = nodes_[static_cast<size_t>(cur)];
    const bool overflow =
        n.is_leaf
            ? static_cast<int64_t>(n.records.size()) > options_.leaf_capacity
            : static_cast<int64_t>(n.children.size()) >
                  options_.internal_fanout;
    if (!overflow) return;

    const int64_t right_id = AllocNode(n.is_leaf);
    // AllocNode may reallocate nodes_; refetch.
    Node& left = nodes_[static_cast<size_t>(cur)];
    Node& right = Access(right_id, /*is_write=*/true);
    Key separator;
    if (left.is_leaf) {
      const int64_t total = static_cast<int64_t>(left.records.size());
      const int64_t keep = (total + 1) / 2;
      right.records.assign(left.records.begin() + keep, left.records.end());
      left.records.resize(static_cast<size_t>(keep));
      separator = right.records.front().key;
      // Stitch the leaf chain.
      right.next_leaf = left.next_leaf;
      right.prev_leaf = cur;
      left.next_leaf = right_id;
      if (right.next_leaf >= 0) {
        Access(right.next_leaf, /*is_write=*/true).prev_leaf = right_id;
      }
    } else {
      const int64_t total = static_cast<int64_t>(left.children.size());
      const int64_t keep = (total + 1) / 2;
      separator = left.keys[static_cast<size_t>(keep - 1)];
      right.children.assign(left.children.begin() + keep,
                            left.children.end());
      right.keys.assign(left.keys.begin() + keep, left.keys.end());
      left.children.resize(static_cast<size_t>(keep));
      left.keys.resize(static_cast<size_t>(keep - 1));
    }
    Access(cur, /*is_write=*/true);  // left half rewritten

    if (path.empty()) {
      const int64_t new_root = AllocNode(/*is_leaf=*/false);
      Node& root = Access(new_root, /*is_write=*/true);
      root.is_leaf = false;
      root.children = {cur, right_id};
      root.keys = {separator};
      root_ = new_root;
      return;
    }
    const int64_t parent_id = path.back();
    path.pop_back();
    Node& parent = Access(parent_id, /*is_write=*/true);
    const auto pos = std::find(parent.children.begin(),
                               parent.children.end(), cur);
    DSF_CHECK(pos != parent.children.end()) << "split lost its parent link";
    const size_t index = static_cast<size_t>(pos - parent.children.begin());
    parent.keys.insert(parent.keys.begin() + index, separator);
    parent.children.insert(parent.children.begin() + index + 1, right_id);
    cur = parent_id;
  }
}

Status BTree::Delete(Key key) {
  if (root_ < 0) return Status::NotFound("key absent");
  std::vector<int64_t> path;
  const int64_t leaf_id = DescendToLeaf(key, &path);
  Node& leaf = nodes_[static_cast<size_t>(leaf_id)];
  const auto it = std::lower_bound(leaf.records.begin(), leaf.records.end(),
                                   Record{key, 0}, RecordKeyLess);
  if (it == leaf.records.end() || it->key != key) {
    return Status::NotFound("key absent");
  }
  Access(leaf_id, /*is_write=*/true).records.erase(it);
  --size_;
  if (leaf_id != root_ &&
      static_cast<int64_t>(leaf.records.size()) < MinLeafRecords()) {
    RebalanceUpward(path);
  }
  return Status::OK();
}

void BTree::RebalanceUpward(std::vector<int64_t>& path) {
  int64_t cur = path.back();
  path.pop_back();
  for (;;) {
    Node& n = nodes_[static_cast<size_t>(cur)];
    if (path.empty()) {
      // cur is the root: collapse an internal root with a single child.
      if (!n.is_leaf && n.children.size() == 1) {
        root_ = n.children[0];
        FreeNode(cur);
      }
      return;
    }
    const bool underflow =
        n.is_leaf ? static_cast<int64_t>(n.records.size()) < MinLeafRecords()
                  : static_cast<int64_t>(n.children.size()) < MinChildren();
    if (!underflow) return;

    const int64_t parent_id = path.back();
    path.pop_back();
    Node& parent = Access(parent_id, /*is_write=*/true);
    const auto pos =
        std::find(parent.children.begin(), parent.children.end(), cur);
    DSF_CHECK(pos != parent.children.end()) << "rebalance lost parent link";
    const size_t index = static_cast<size_t>(pos - parent.children.begin());

    // Try borrowing from the left, then the right sibling.
    if (index > 0) {
      const int64_t sib_id = parent.children[index - 1];
      Node& sib = Access(sib_id, /*is_write=*/false);
      const bool can_borrow =
          n.is_leaf
              ? static_cast<int64_t>(sib.records.size()) > MinLeafRecords()
              : static_cast<int64_t>(sib.children.size()) > MinChildren();
      if (can_borrow) {
        Access(sib_id, /*is_write=*/true);
        Access(cur, /*is_write=*/true);
        if (n.is_leaf) {
          n.records.insert(n.records.begin(), sib.records.back());
          sib.records.pop_back();
          parent.keys[index - 1] = n.records.front().key;
        } else {
          n.children.insert(n.children.begin(), sib.children.back());
          n.keys.insert(n.keys.begin(), parent.keys[index - 1]);
          parent.keys[index - 1] = sib.keys.back();
          sib.keys.pop_back();
          sib.children.pop_back();
        }
        return;
      }
    }
    if (index + 1 < parent.children.size()) {
      const int64_t sib_id = parent.children[index + 1];
      Node& sib = Access(sib_id, /*is_write=*/false);
      const bool can_borrow =
          n.is_leaf
              ? static_cast<int64_t>(sib.records.size()) > MinLeafRecords()
              : static_cast<int64_t>(sib.children.size()) > MinChildren();
      if (can_borrow) {
        Access(sib_id, /*is_write=*/true);
        Access(cur, /*is_write=*/true);
        if (n.is_leaf) {
          n.records.push_back(sib.records.front());
          sib.records.erase(sib.records.begin());
          parent.keys[index] = sib.records.front().key;
        } else {
          n.children.push_back(sib.children.front());
          n.keys.push_back(parent.keys[index]);
          parent.keys[index] = sib.keys.front();
          sib.keys.erase(sib.keys.begin());
          sib.children.erase(sib.children.begin());
        }
        return;
      }
    }

    // Merge with a sibling: fold the right node of the pair into the left.
    const size_t left_index = index > 0 ? index - 1 : index;
    const int64_t left_id = parent.children[left_index];
    const int64_t right_id = parent.children[left_index + 1];
    Node& left = Access(left_id, /*is_write=*/true);
    Node& right = Access(right_id, /*is_write=*/false);
    if (left.is_leaf) {
      left.records.insert(left.records.end(), right.records.begin(),
                          right.records.end());
      left.next_leaf = right.next_leaf;
      if (right.next_leaf >= 0) {
        Access(right.next_leaf, /*is_write=*/true).prev_leaf = left_id;
      }
    } else {
      left.keys.push_back(parent.keys[left_index]);
      left.keys.insert(left.keys.end(), right.keys.begin(),
                       right.keys.end());
      left.children.insert(left.children.end(), right.children.begin(),
                           right.children.end());
    }
    parent.keys.erase(parent.keys.begin() + left_index);
    parent.children.erase(parent.children.begin() + left_index + 1);
    FreeNode(right_id);
    cur = parent_id;
  }
}

StatusOr<Record> BTree::Get(Key key) {
  if (root_ < 0) return Status::NotFound("key absent");
  std::vector<int64_t> path;
  const int64_t leaf_id = DescendToLeaf(key, &path);
  const Node& leaf = nodes_[static_cast<size_t>(leaf_id)];
  const auto it = std::lower_bound(leaf.records.begin(), leaf.records.end(),
                                   Record{key, 0}, RecordKeyLess);
  if (it == leaf.records.end() || it->key != key) {
    return Status::NotFound("key absent");
  }
  return *it;
}

bool BTree::Contains(Key key) { return Get(key).ok(); }

Status BTree::Scan(Key lo, Key hi, std::vector<Record>* out) {
  DSF_CHECK(out != nullptr) << "Scan output vector is null";
  if (root_ < 0 || lo > hi) return Status::OK();
  std::vector<int64_t> path;
  int64_t leaf_id = DescendToLeaf(lo, &path);
  while (leaf_id >= 0) {
    const Node& leaf = Access(leaf_id, /*is_write=*/false);
    for (const Record& r : leaf.records) {
      if (r.key < lo) continue;
      if (r.key > hi) return Status::OK();
      out->push_back(r);
    }
    leaf_id = leaf.next_leaf;
  }
  return Status::OK();
}

std::vector<Record> BTree::ScanAll() {
  std::vector<Record> out;
  const Status s = Scan(0, std::numeric_limits<Key>::max(), &out);
  DSF_CHECK(s.ok()) << "full scan failed";
  return out;
}

Status BTree::BulkLoad(const std::vector<Record>& records) {
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i - 1].key >= records[i].key) {
      return Status::InvalidArgument(
          "bulk load records must be strictly ascending by key");
    }
  }
  nodes_.clear();
  free_list_.clear();
  root_ = -1;
  size_ = static_cast<int64_t>(records.size());
  tracker_.Reset();
  if (records.empty()) return Status::OK();

  // Level 0: leaves with near-uniform fill, consecutive ids.
  const int64_t n = static_cast<int64_t>(records.size());
  const int64_t num_leaves = DivCeil(n, options_.leaf_capacity);
  std::vector<int64_t> level;
  std::vector<Key> level_min_keys;
  int64_t offset = 0;
  int64_t prev_leaf = -1;
  for (int64_t i = 0; i < num_leaves; ++i) {
    const int64_t end = (i + 1) * n / num_leaves;
    const int64_t id = AllocNode(/*is_leaf=*/true);
    Node& leaf = nodes_[static_cast<size_t>(id)];
    leaf.records.assign(records.begin() + offset, records.begin() + end);
    leaf.prev_leaf = prev_leaf;
    if (prev_leaf >= 0) nodes_[static_cast<size_t>(prev_leaf)].next_leaf = id;
    prev_leaf = id;
    level.push_back(id);
    level_min_keys.push_back(leaf.records.front().key);
    offset = end;
  }
  // Upper levels.
  while (level.size() > 1) {
    const int64_t groups =
        DivCeil(static_cast<int64_t>(level.size()), options_.internal_fanout);
    std::vector<int64_t> next_level;
    std::vector<Key> next_min_keys;
    int64_t start = 0;
    const int64_t total = static_cast<int64_t>(level.size());
    for (int64_t g = 0; g < groups; ++g) {
      const int64_t end = (g + 1) * total / groups;
      const int64_t id = AllocNode(/*is_leaf=*/false);
      Node& node = nodes_[static_cast<size_t>(id)];
      node.is_leaf = false;
      for (int64_t i = start; i < end; ++i) {
        node.children.push_back(level[static_cast<size_t>(i)]);
        if (i > start) {
          node.keys.push_back(level_min_keys[static_cast<size_t>(i)]);
        }
      }
      next_level.push_back(id);
      next_min_keys.push_back(level_min_keys[static_cast<size_t>(start)]);
      start = end;
    }
    level = std::move(next_level);
    level_min_keys = std::move(next_min_keys);
  }
  root_ = level[0];
  tracker_.Reset();
  return Status::OK();
}

int64_t BTree::height() const {
  if (root_ < 0) return 0;
  int64_t h = 1;
  int64_t cur = root_;
  while (!nodes_[static_cast<size_t>(cur)].is_leaf) {
    cur = nodes_[static_cast<size_t>(cur)].children[0];
    ++h;
  }
  return h;
}

int64_t BTree::num_nodes() const {
  return static_cast<int64_t>(nodes_.size()) -
         static_cast<int64_t>(free_list_.size());
}

Status BTree::ValidateSubtree(int64_t id, int64_t depth, int64_t leaf_depth,
                              bool is_root, Key* min_key,
                              Key* max_key) const {
  const Node& n = nodes_[static_cast<size_t>(id)];
  if (n.free) return Status::Corruption("freed node reachable");
  if (n.is_leaf) {
    if (depth != leaf_depth) {
      return Status::Corruption("leaves at unequal depth");
    }
    if (!is_root &&
        static_cast<int64_t>(n.records.size()) < MinLeafRecords()) {
      return Status::Corruption("leaf underflow");
    }
    if (static_cast<int64_t>(n.records.size()) > options_.leaf_capacity) {
      return Status::Corruption("leaf overflow");
    }
    if (n.records.empty()) {
      if (!is_root) return Status::Corruption("empty non-root leaf");
      *min_key = 0;
      *max_key = 0;
      return Status::OK();
    }
    for (size_t i = 1; i < n.records.size(); ++i) {
      if (n.records[i - 1].key >= n.records[i].key) {
        return Status::Corruption("leaf records out of order");
      }
    }
    *min_key = n.records.front().key;
    *max_key = n.records.back().key;
    return Status::OK();
  }
  if (!is_root && static_cast<int64_t>(n.children.size()) < MinChildren()) {
    return Status::Corruption("internal underflow");
  }
  if (static_cast<int64_t>(n.children.size()) > options_.internal_fanout) {
    return Status::Corruption("internal overflow");
  }
  if (is_root && n.children.size() < 2) {
    return Status::Corruption("internal root with fewer than 2 children");
  }
  if (n.keys.size() + 1 != n.children.size()) {
    return Status::Corruption("separator/child count mismatch");
  }
  Key subtree_min = 0;
  Key subtree_max = 0;
  for (size_t i = 0; i < n.children.size(); ++i) {
    Key child_min;
    Key child_max;
    DSF_RETURN_IF_ERROR(ValidateSubtree(n.children[i], depth + 1, leaf_depth,
                                        false, &child_min, &child_max));
    if (i == 0) {
      subtree_min = child_min;
    } else {
      if (n.keys[i - 1] > child_min || n.keys[i - 1] <= subtree_max) {
        return Status::Corruption("separator outside child key ranges");
      }
    }
    subtree_max = child_max;
  }
  *min_key = subtree_min;
  *max_key = subtree_max;
  return Status::OK();
}

Status BTree::ValidateInvariants() const {
  if (root_ < 0) return Status::OK();
  // Depth of the leftmost leaf is the reference depth.
  const int64_t leaf_depth = height();
  Key min_key;
  Key max_key;
  DSF_RETURN_IF_ERROR(
      ValidateSubtree(root_, 1, leaf_depth, true, &min_key, &max_key));
  // Leaf chain must enumerate exactly size_ records in ascending order.
  int64_t cur = root_;
  while (!nodes_[static_cast<size_t>(cur)].is_leaf) {
    cur = nodes_[static_cast<size_t>(cur)].children[0];
  }
  int64_t chained = 0;
  bool have_prev = false;
  Key prev = 0;
  int64_t prev_id = -1;
  while (cur >= 0) {
    const Node& leaf = nodes_[static_cast<size_t>(cur)];
    if (leaf.prev_leaf != prev_id) {
      return Status::Corruption("leaf chain prev pointer broken");
    }
    for (const Record& r : leaf.records) {
      if (have_prev && r.key <= prev) {
        return Status::Corruption("leaf chain keys out of order");
      }
      prev = r.key;
      have_prev = true;
      ++chained;
    }
    prev_id = cur;
    cur = leaf.next_leaf;
  }
  if (chained != size_) {
    return Status::Corruption("leaf chain record count mismatch");
  }
  return Status::OK();
}

}  // namespace dsf
