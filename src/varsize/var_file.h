// Variable-size records in a dense sequential file — the setting of the
// paper's reference [BCW85] (Baker-Coffman-Willard, "A Dynamic Storage
// Allocation Algorithm Designed for Badly Fragmented Memory"), which
// studies amortized maintenance when record sizes vary. [BCW85] drops the
// sequential-order condition; this module keeps it (condition (iii) of
// (d,D)-density) and generalizes the CONTROL 1 machinery: densities,
// thresholds and page capacities are measured in *units* (think bytes),
// each record occupying size(r) in [1, max_record_size] units.
//
// Differences from the fixed-size file, and their consequences:
//   * A page may transiently exceed D by up to max_record_size - 1 units
//     inside a command (records are atomic).
//   * Even redistribution can only balance pages to within
//     max_record_size - 1 units, so restoring BALANCE after a violation
//     needs (D-d) > (2 + max_record_size) * ceil(log M); Create()
//     enforces this widened gap condition.
//
// Maintenance is CONTROL 1 style (amortized), matching [BCW85]'s scope; a
// worst-case CONTROL 2 for variable sizes is future work the 1986 paper
// does not claim.

#ifndef DSF_VARSIZE_VAR_FILE_H_
#define DSF_VARSIZE_VAR_FILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/calibrator.h"
#include "core/density.h"
#include "storage/io_stats.h"
#include "storage/record.h"
#include "util/status.h"

namespace dsf {

struct VarRecord {
  Key key = 0;
  int64_t size = 1;  // units occupied, in [1, max_record_size]
  Value value = 0;

  friend bool operator==(const VarRecord& a, const VarRecord& b) {
    return a.key == b.key && a.size == b.size && a.value == b.value;
  }
};

class VarFile {
 public:
  struct Options {
    int64_t num_pages = 0;        // M
    int64_t d = 0;                // density floor, in units per page
    int64_t D = 0;                // page capacity, in units
    int64_t max_record_size = 1;  // largest legal record, in units
  };

  struct Stats {
    int64_t rebalances = 0;
    int64_t pages_redistributed = 0;
  };

  static StatusOr<std::unique_ptr<VarFile>> Create(const Options& options);

  // Fails with InvalidArgument when size is outside [1, max_record_size],
  // AlreadyExists on a duplicate key, CapacityExceeded when the file
  // already holds d*M units.
  Status Insert(const VarRecord& record);
  Status Delete(Key key);
  StatusOr<VarRecord> Get(Key key);
  bool Contains(Key key);
  Status Scan(Key lo, Key hi, std::vector<VarRecord>* out);
  std::vector<VarRecord> ScanAll();

  // Ascending keys, total units <= d*M; spread at uniform unit density.
  Status BulkLoad(const std::vector<VarRecord>& records);

  int64_t record_count() const { return record_count_; }
  int64_t total_units() const { return calibrator_.TotalRecords(); }
  int64_t MaxUnits() const { return spec_.MaxRecords(); }  // d*M
  IoStats stats() const { return tracker_.stats(); }
  void ResetStats() { tracker_.Reset(); }
  const Stats& maintenance_stats() const { return maintenance_stats_; }

  // Order, unit accounting, page bounds (<= D at command boundaries),
  // calibrator consistency, BALANCE(d,D) in units.
  Status ValidateInvariants() const;

 private:
  VarFile(const Options& options, DensitySpec spec);

  int64_t PageUnits(Address page) const;
  Address TargetPageForInsert(Key key) const;
  void SyncPage(Address page);
  // Accounted page access.
  std::vector<VarRecord>& TouchPage(Address page, bool write);

  int HighestViolatorOnPath(Address page) const;
  void Redistribute(int father);

  Options options_;
  DensitySpec spec_;
  Calibrator calibrator_;  // rank counters hold units, fences hold keys
  std::vector<std::vector<VarRecord>> pages_;
  AccessTracker tracker_;
  int64_t record_count_ = 0;
  Stats maintenance_stats_;
};

}  // namespace dsf

#endif  // DSF_VARSIZE_VAR_FILE_H_
