#include "varsize/var_file.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace dsf {

namespace {

bool VarKeyLess(const VarRecord& a, const VarRecord& b) {
  return a.key < b.key;
}

}  // namespace

StatusOr<std::unique_ptr<VarFile>> VarFile::Create(const Options& options) {
  StatusOr<DensitySpec> spec =
      DensitySpec::Create(options.num_pages, options.d, options.D);
  if (!spec.ok()) return spec.status();
  if (options.max_record_size < 1) {
    return Status::InvalidArgument("max_record_size must be >= 1");
  }
  // Widened gap condition: redistribution balances pages only to within
  // max_record_size - 1 units, so the per-level threshold step (D-d)/L
  // must absorb that plus the fixed-size algorithm's own slack.
  const int64_t required = (2 + options.max_record_size) * spec->L();
  if (options.D - options.d <= required) {
    return Status::InvalidArgument(
        "variable-size maintenance needs D - d > (2 + max_record_size) * "
        "ceil(log M) = " +
        std::to_string(required));
  }
  return std::unique_ptr<VarFile>(new VarFile(options, *spec));
}

VarFile::VarFile(const Options& options, DensitySpec spec)
    : options_(options), spec_(spec), calibrator_(options.num_pages) {
  pages_.resize(static_cast<size_t>(options.num_pages));
}

int64_t VarFile::PageUnits(Address page) const {
  return calibrator_.Count(calibrator_.LeafOf(page));
}

std::vector<VarRecord>& VarFile::TouchPage(Address page, bool write) {
  tracker_.OnAccess(page, write);
  return pages_[static_cast<size_t>(page - 1)];
}

void VarFile::SyncPage(Address page) {
  const std::vector<VarRecord>& p = pages_[static_cast<size_t>(page - 1)];
  int64_t units = 0;
  for (const VarRecord& r : p) units += r.size;
  if (p.empty()) {
    calibrator_.SyncLeaf(page, 0, 0, 0);
  } else {
    calibrator_.SyncLeaf(page, units, p.front().key, p.back().key);
  }
}

Address VarFile::TargetPageForInsert(Key key) const {
  const Address successor = calibrator_.FirstNonEmptyPageWithMaxGE(key);
  if (successor == 0) {
    const Address last =
        calibrator_.LastNonEmptyPageIn(1, options_.num_pages);
    return last != 0 ? last : (options_.num_pages + 1) / 2;
  }
  if (calibrator_.MinKeyOf(calibrator_.LeafOf(successor)) <= key) {
    return successor;
  }
  const Address predecessor =
      calibrator_.LastNonEmptyPageIn(1, successor - 1);
  return predecessor != 0 ? predecessor : successor;
}

Status VarFile::Insert(const VarRecord& record) {
  if (record.size < 1 || record.size > options_.max_record_size) {
    return Status::InvalidArgument("record size outside [1, max]");
  }
  const Address target = TargetPageForInsert(record.key);
  std::vector<VarRecord>& page = TouchPage(target, /*write=*/false);
  const auto pos =
      std::lower_bound(page.begin(), page.end(), record, VarKeyLess);
  if (pos != page.end() && pos->key == record.key) {
    return Status::AlreadyExists("key already present");
  }
  if (total_units() + record.size > MaxUnits()) {
    return Status::CapacityExceeded("file already holds d*M units");
  }
  TouchPage(target, /*write=*/true);
  page.insert(pos, record);
  SyncPage(target);
  ++record_count_;

  const int violator = HighestViolatorOnPath(target);
  if (violator != Calibrator::kNoNode) {
    const int father = calibrator_.Parent(violator);
    DSF_CHECK(father != Calibrator::kNoNode)
        << "root violated BALANCE despite the capacity check";
    Redistribute(father);
  }
  return Status::OK();
}

Status VarFile::Delete(Key key) {
  const Address page_address = calibrator_.FirstNonEmptyPageWithMaxGE(key);
  if (page_address == 0) return Status::NotFound("key absent");
  std::vector<VarRecord>& page = TouchPage(page_address, /*write=*/false);
  const auto it = std::lower_bound(page.begin(), page.end(),
                                   VarRecord{key, 1, 0}, VarKeyLess);
  if (it == page.end() || it->key != key) {
    return Status::NotFound("key absent");
  }
  TouchPage(page_address, /*write=*/true);
  page.erase(it);
  SyncPage(page_address);
  --record_count_;
  return Status::OK();
}

StatusOr<VarRecord> VarFile::Get(Key key) {
  const Address page_address = calibrator_.FirstNonEmptyPageWithMaxGE(key);
  if (page_address == 0) return Status::NotFound("key absent");
  const std::vector<VarRecord>& page =
      TouchPage(page_address, /*write=*/false);
  const auto it = std::lower_bound(page.begin(), page.end(),
                                   VarRecord{key, 1, 0}, VarKeyLess);
  if (it == page.end() || it->key != key) {
    return Status::NotFound("key absent");
  }
  return *it;
}

bool VarFile::Contains(Key key) { return Get(key).ok(); }

Status VarFile::Scan(Key lo, Key hi, std::vector<VarRecord>* out) {
  DSF_CHECK(out != nullptr) << "Scan output vector is null";
  if (lo > hi) return Status::OK();
  Address page_address = calibrator_.FirstNonEmptyPageWithMaxGE(lo);
  if (page_address == 0) return Status::OK();
  for (; page_address <= options_.num_pages; ++page_address) {
    const int leaf = calibrator_.LeafOf(page_address);
    if (calibrator_.Count(leaf) == 0) continue;
    if (calibrator_.MinKeyOf(leaf) > hi) break;
    for (const VarRecord& r : TouchPage(page_address, /*write=*/false)) {
      if (r.key < lo) continue;
      if (r.key > hi) return Status::OK();
      out->push_back(r);
    }
  }
  return Status::OK();
}

std::vector<VarRecord> VarFile::ScanAll() {
  std::vector<VarRecord> out;
  const Status s = Scan(0, std::numeric_limits<Key>::max(), &out);
  // lint:allow(check-on-fault-path): varsize files take no fault policy;
  // a full scan over an in-invariant file cannot fail.
  DSF_CHECK(s.ok()) << "full scan failed";
  return out;
}

Status VarFile::BulkLoad(const std::vector<VarRecord>& records) {
  int64_t units = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].size < 1 || records[i].size > options_.max_record_size) {
      return Status::InvalidArgument("record size outside [1, max]");
    }
    if (i > 0 && records[i - 1].key >= records[i].key) {
      return Status::InvalidArgument("bulk load keys must ascend");
    }
    units += records[i].size;
  }
  if (units > MaxUnits()) {
    return Status::CapacityExceeded("bulk load exceeds d*M units");
  }
  // Uniform unit density: page j targets cumulative (j+1)*units/M.
  for (auto& page : pages_) page.clear();
  size_t next = 0;
  int64_t assigned = 0;
  for (Address page = 1; page <= options_.num_pages; ++page) {
    const int64_t target = page * units / options_.num_pages;
    while (next < records.size() && assigned < target) {
      pages_[static_cast<size_t>(page - 1)].push_back(records[next]);
      assigned += records[next].size;
      ++next;
    }
    SyncPage(page);
  }
  DSF_CHECK(next == records.size()) << "bulk load left records behind";
  record_count_ = static_cast<int64_t>(records.size());
  tracker_.Reset();
  return Status::OK();
}

int VarFile::HighestViolatorOnPath(Address page) const {
  for (const int v : calibrator_.PathToLeaf(page)) {
    if (!spec_.DensityAtMost(calibrator_.Count(v), calibrator_.PagesIn(v),
                             calibrator_.Depth(v), kThirds1)) {
      return v;
    }
  }
  return Calibrator::kNoNode;
}

void VarFile::Redistribute(int father) {
  const Address lo = calibrator_.RangeLo(father);
  const Address hi = calibrator_.RangeHi(father);
  ++maintenance_stats_.rebalances;
  maintenance_stats_.pages_redistributed += calibrator_.PagesIn(father);

  std::vector<VarRecord> all;
  int64_t units = 0;
  for (Address p = lo; p <= hi; ++p) {
    if (PageUnits(p) == 0) continue;
    const std::vector<VarRecord>& page = TouchPage(p, /*write=*/false);
    for (const VarRecord& r : page) units += r.size;
    all.insert(all.end(), page.begin(), page.end());
  }
  // Even spread by units: page j fills until the cumulative target; each
  // page ends within max_record_size - 1 units of the exact quota.
  const int64_t m = hi - lo + 1;
  size_t next = 0;
  int64_t assigned = 0;
  for (Address p = lo; p <= hi; ++p) {
    std::vector<VarRecord>& page = TouchPage(p, /*write=*/true);
    page.clear();
    const int64_t target = (p - lo + 1) * units / m;
    while (next < all.size() && assigned < target) {
      page.push_back(all[next]);
      assigned += all[next].size;
      ++next;
    }
    SyncPage(p);
  }
  DSF_CHECK(next == all.size()) << "redistribution left records behind";
}

Status VarFile::ValidateInvariants() const {
  int64_t records = 0;
  bool have_prev = false;
  Key prev = 0;
  for (Address p = 1; p <= options_.num_pages; ++p) {
    const std::vector<VarRecord>& page = pages_[static_cast<size_t>(p - 1)];
    int64_t units = 0;
    for (const VarRecord& r : page) {
      if (r.size < 1 || r.size > options_.max_record_size) {
        return Status::Corruption("record size out of bounds");
      }
      if (have_prev && r.key <= prev) {
        return Status::Corruption("keys out of order");
      }
      prev = r.key;
      have_prev = true;
      units += r.size;
      ++records;
    }
    if (units > options_.D) {
      return Status::Corruption("page above D units at a command boundary");
    }
    if (units != calibrator_.Count(calibrator_.LeafOf(p))) {
      return Status::Corruption("stale unit counter");
    }
    if (!page.empty()) {
      const int leaf = calibrator_.LeafOf(p);
      if (calibrator_.MinKeyOf(leaf) != page.front().key ||
          calibrator_.MaxKeyOf(leaf) != page.back().key) {
        return Status::Corruption("stale fence keys");
      }
    }
  }
  if (records != record_count_) {
    return Status::Corruption("record count mismatch");
  }
  DSF_RETURN_IF_ERROR(calibrator_.ValidateAggregates());
  for (int v = 0; v < calibrator_.node_count(); ++v) {
    if (!spec_.DensityAtMost(calibrator_.Count(v), calibrator_.PagesIn(v),
                             calibrator_.Depth(v), kThirds1)) {
      return Status::Corruption("BALANCE(d,D) violated in units at node " +
                                std::to_string(v));
    }
  }
  return Status::OK();
}

}  // namespace dsf
