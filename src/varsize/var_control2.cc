#include "varsize/var_control2.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace dsf {

namespace {

bool VarKeyLess(const VarRecord& a, const VarRecord& b) {
  return a.key < b.key;
}

}  // namespace

StatusOr<std::unique_ptr<VarControl2>> VarControl2::Create(
    const Options& options) {
  StatusOr<DensitySpec> spec =
      DensitySpec::Create(options.num_pages, options.d, options.D);
  if (!spec.ok()) return spec.status();
  if (options.max_record_size < 1) {
    return Status::InvalidArgument("max_record_size must be >= 1");
  }
  // Threshold spacing (D-d)/(3L) must absorb a whole-record overshoot.
  const int64_t required = 3 * options.max_record_size * spec->L();
  if (options.D - options.d <= required) {
    return Status::InvalidArgument(
        "variable-size CONTROL 2 needs D - d > 3 * max_record_size * "
        "ceil(log M) = " +
        std::to_string(required));
  }
  if (options.J < 0) return Status::InvalidArgument("J must be >= 0");
  const int64_t j = options.J > 0
                        ? options.J
                        : spec->RecommendedJ(8.0);
  return std::unique_ptr<VarControl2>(new VarControl2(options, *spec, j));
}

VarControl2::VarControl2(const Options& options, DensitySpec spec,
                         int64_t j)
    : options_(options),
      spec_(spec),
      j_(j),
      calibrator_(options.num_pages) {
  pages_.resize(static_cast<size_t>(options.num_pages));
  const size_t n = static_cast<size_t>(calibrator_.node_count());
  warning_.assign(n, 0);
  dest_.assign(n, 0);
  warn_count_subtree_.assign(n, 0);
  warn_max_depth_subtree_.assign(n, -1);
}

std::vector<VarRecord>& VarControl2::TouchPage(Address page, bool write) {
  tracker_.OnAccess(page, write);
  return pages_[static_cast<size_t>(page - 1)];
}

void VarControl2::SyncPage(Address page) {
  const std::vector<VarRecord>& p = pages_[static_cast<size_t>(page - 1)];
  int64_t units = 0;
  for (const VarRecord& r : p) units += r.size;
  if (p.empty()) {
    calibrator_.SyncLeaf(page, 0, 0, 0);
  } else {
    calibrator_.SyncLeaf(page, units, p.front().key, p.back().key);
  }
}

Address VarControl2::TargetPageForInsert(Key key) const {
  const Address successor = calibrator_.FirstNonEmptyPageWithMaxGE(key);
  if (successor == 0) {
    const Address last =
        calibrator_.LastNonEmptyPageIn(1, options_.num_pages);
    return last != 0 ? last : (options_.num_pages + 1) / 2;
  }
  if (calibrator_.MinKeyOf(calibrator_.LeafOf(successor)) <= key) {
    return successor;
  }
  const Address predecessor =
      calibrator_.LastNonEmptyPageIn(1, successor - 1);
  return predecessor != 0 ? predecessor : successor;
}

void VarControl2::BeginCommand() {
  command_start_accesses_ = tracker_.stats().TotalAccesses();
}

void VarControl2::EndCommand() {
  const int64_t used =
      tracker_.stats().TotalAccesses() - command_start_accesses_;
  ++command_cost_.commands;
  command_cost_.total_accesses += used;
  command_cost_.max_accesses = std::max(command_cost_.max_accesses, used);
}

void VarControl2::SetWarning(int v, bool on) {
  if ((warning_[v] != 0) == on) return;
  warning_[v] = on ? 1 : 0;
  for (int a = v; a != Calibrator::kNoNode; a = calibrator_.Parent(a)) {
    int64_t count = warning_[a] ? 1 : 0;
    int64_t max_depth = warning_[a] ? calibrator_.Depth(a) : -1;
    if (!calibrator_.IsLeaf(a)) {
      const int l = calibrator_.Left(a);
      const int r = calibrator_.Right(a);
      count += warn_count_subtree_[l] + warn_count_subtree_[r];
      max_depth = std::max({max_depth, warn_max_depth_subtree_[l],
                            warn_max_depth_subtree_[r]});
    }
    warn_count_subtree_[a] = count;
    warn_max_depth_subtree_[a] = max_depth;
  }
}

void VarControl2::LowerIfCalm(int v) {
  if (warning_[v] == 0) return;
  if (spec_.DensityAtMost(calibrator_.Count(v), calibrator_.PagesIn(v),
                          calibrator_.Depth(v), kThirds1Of3)) {
    SetWarning(v, false);
    ++maintenance_stats_.warnings_lowered;
  }
}

void VarControl2::CheckLowerOnPath(Address page) {
  for (const int v : calibrator_.PathToLeaf(page)) LowerIfCalm(v);
}

void VarControl2::CheckRaiseOnPath(Address page) {
  for (const int v : calibrator_.PathToLeaf(page)) {
    if (v == calibrator_.root()) continue;
    if (warning_[v] == 0 &&
        spec_.DensityAtLeast(calibrator_.Count(v), calibrator_.PagesIn(v),
                             calibrator_.Depth(v), kThirds2Of3)) {
      Activate(v);
    }
  }
}

void VarControl2::Activate(int w) {
  ++maintenance_stats_.activations;
  SetWarning(w, true);
  const int fw = calibrator_.Parent(w);
  const Address fw_lo = calibrator_.RangeLo(fw);
  const Address fw_hi = calibrator_.RangeHi(fw);
  dest_[w] = calibrator_.IsRightChild(w) ? fw_lo : fw_hi;
  // Roll-back rules, unchanged from the fixed-size algorithm.
  for (int fy = calibrator_.Parent(fw); fy != Calibrator::kNoNode;
       fy = calibrator_.Parent(fy)) {
    const int children[2] = {calibrator_.Left(fy), calibrator_.Right(fy)};
    for (const int y : children) {
      if (y == Calibrator::kNoNode || warning_[y] == 0) continue;
      if (calibrator_.IsRightChild(y)) {
        if (dest_[y] >= fw_lo + 1 && dest_[y] <= fw_hi) dest_[y] = fw_lo;
      } else {
        if (dest_[y] >= fw_lo && dest_[y] <= fw_hi - 1) dest_[y] = fw_hi;
      }
    }
  }
}

int VarControl2::SelectNode(Address leaf_page) const {
  const int leaf = calibrator_.LeafOf(leaf_page);
  int alpha = Calibrator::kNoNode;
  for (int a = calibrator_.Parent(leaf); a != Calibrator::kNoNode;
       a = calibrator_.Parent(a)) {
    if (warn_count_subtree_[a] - (warning_[a] ? 1 : 0) > 0) {
      alpha = a;
      break;
    }
  }
  if (alpha == Calibrator::kNoNode) return Calibrator::kNoNode;
  const int64_t target_depth = warn_max_depth_subtree_[alpha];
  int v = alpha;
  while (!(warning_[v] != 0 && calibrator_.Depth(v) == target_depth)) {
    const int l = calibrator_.Left(v);
    v = (warn_max_depth_subtree_[l] == target_depth) ? l
                                                     : calibrator_.Right(v);
  }
  return v;
}

void VarControl2::Shift(int v) {
  ++maintenance_stats_.shifts;
  const int f = calibrator_.Parent(v);
  const bool moves_left = calibrator_.IsRightChild(v);
  const Address dest = dest_[v];

  Address source;
  if (moves_left) {
    source =
        calibrator_.FirstNonEmptyPageIn(dest + 1, calibrator_.RangeHi(f));
  } else {
    source =
        calibrator_.LastNonEmptyPageIn(calibrator_.RangeLo(f), dest - 1);
  }
  if (source == 0) return;  // defensively idle, as in the fixed-size code

  std::vector<int> up;
  for (const int x : calibrator_.PathToLeaf(dest)) {
    if (source < calibrator_.RangeLo(x) || source > calibrator_.RangeHi(x)) {
      up.push_back(x);
    }
  }

  int64_t budget_units = std::numeric_limits<int64_t>::max();
  for (const int x : up) {
    budget_units = std::min(
        budget_units,
        spec_.MovesUntilAtLeast(calibrator_.Count(x), calibrator_.PagesIn(x),
                                calibrator_.Depth(x), kThirds0));
  }

  if (budget_units > 0) {
    std::vector<VarRecord>& src = TouchPage(source, /*write=*/false);
    std::vector<VarRecord>& dst = TouchPage(dest, /*write=*/false);
    TouchPage(source, /*write=*/true);
    TouchPage(dest, /*write=*/true);
    int64_t moved_units = 0;
    // Move whole records until a threshold is reached or crossed (the
    // final record may overshoot by up to S-1 units) or SOURCE empties.
    while (moved_units < budget_units && !src.empty()) {
      if (moves_left) {
        moved_units += src.front().size;
        dst.push_back(src.front());
        src.erase(src.begin());
      } else {
        moved_units += src.back().size;
        dst.insert(dst.begin(), src.back());
        src.pop_back();
      }
      ++maintenance_stats_.records_shifted;
    }
    maintenance_stats_.units_shifted += moved_units;
    SyncPage(source);
    SyncPage(dest);
  }

  for (const int x : up) {
    if (spec_.DensityAtLeast(calibrator_.Count(x), calibrator_.PagesIn(x),
                             calibrator_.Depth(x), kThirds0)) {
      dest_[v] = moves_left ? calibrator_.RangeHi(x) + 1
                            : calibrator_.RangeLo(x) - 1;
      break;
    }
  }
  if (budget_units > 0) CheckLowerOnPath(source);
}

void VarControl2::RunMaintenance(Address leaf_page) {
  for (int64_t cycle = 0; cycle < j_; ++cycle) {
    const int v = SelectNode(leaf_page);
    if (v == Calibrator::kNoNode) break;
    Shift(v);
  }
}

Status VarControl2::Insert(const VarRecord& record) {
  if (record.size < 1 || record.size > options_.max_record_size) {
    return Status::InvalidArgument("record size outside [1, max]");
  }
  const Address target = TargetPageForInsert(record.key);
  BeginCommand();
  std::vector<VarRecord>& page = TouchPage(target, /*write=*/false);
  const auto pos =
      std::lower_bound(page.begin(), page.end(), record, VarKeyLess);
  if (pos != page.end() && pos->key == record.key) {
    EndCommand();
    return Status::AlreadyExists("key already present");
  }
  if (total_units() + record.size > MaxUnits()) {
    EndCommand();
    return Status::CapacityExceeded("file already holds d*M units");
  }
  TouchPage(target, /*write=*/true);
  page.insert(pos, record);
  SyncPage(target);
  ++record_count_;

  CheckLowerOnPath(target);
  CheckRaiseOnPath(target);
  RunMaintenance(target);
  EndCommand();
  return Status::OK();
}

Status VarControl2::Delete(Key key) {
  const Address page_address = calibrator_.FirstNonEmptyPageWithMaxGE(key);
  if (page_address == 0) return Status::NotFound("key absent");
  BeginCommand();
  std::vector<VarRecord>& page = TouchPage(page_address, /*write=*/false);
  const auto it = std::lower_bound(page.begin(), page.end(),
                                   VarRecord{key, 1, 0}, VarKeyLess);
  if (it == page.end() || it->key != key) {
    EndCommand();
    return Status::NotFound("key absent");
  }
  TouchPage(page_address, /*write=*/true);
  page.erase(it);
  SyncPage(page_address);
  --record_count_;

  CheckLowerOnPath(page_address);
  RunMaintenance(page_address);
  EndCommand();
  return Status::OK();
}

StatusOr<VarRecord> VarControl2::Get(Key key) {
  const Address page_address = calibrator_.FirstNonEmptyPageWithMaxGE(key);
  if (page_address == 0) return Status::NotFound("key absent");
  const std::vector<VarRecord>& page =
      TouchPage(page_address, /*write=*/false);
  const auto it = std::lower_bound(page.begin(), page.end(),
                                   VarRecord{key, 1, 0}, VarKeyLess);
  if (it == page.end() || it->key != key) {
    return Status::NotFound("key absent");
  }
  return *it;
}

Status VarControl2::Scan(Key lo, Key hi, std::vector<VarRecord>* out) {
  DSF_CHECK(out != nullptr) << "Scan output vector is null";
  if (lo > hi) return Status::OK();
  Address page_address = calibrator_.FirstNonEmptyPageWithMaxGE(lo);
  if (page_address == 0) return Status::OK();
  for (; page_address <= options_.num_pages; ++page_address) {
    const int leaf = calibrator_.LeafOf(page_address);
    if (calibrator_.Count(leaf) == 0) continue;
    if (calibrator_.MinKeyOf(leaf) > hi) break;
    for (const VarRecord& r : TouchPage(page_address, /*write=*/false)) {
      if (r.key < lo) continue;
      if (r.key > hi) return Status::OK();
      out->push_back(r);
    }
  }
  return Status::OK();
}

std::vector<VarRecord> VarControl2::ScanAll() {
  std::vector<VarRecord> out;
  const Status s = Scan(0, std::numeric_limits<Key>::max(), &out);
  // lint:allow(check-on-fault-path): varsize files take no fault policy;
  // a full scan over an in-invariant file cannot fail.
  DSF_CHECK(s.ok()) << "full scan failed";
  return out;
}

Status VarControl2::BulkLoad(const std::vector<VarRecord>& records) {
  int64_t units = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].size < 1 || records[i].size > options_.max_record_size) {
      return Status::InvalidArgument("record size outside [1, max]");
    }
    if (i > 0 && records[i - 1].key >= records[i].key) {
      return Status::InvalidArgument("bulk load keys must ascend");
    }
    units += records[i].size;
  }
  if (units > MaxUnits()) {
    return Status::CapacityExceeded("bulk load exceeds d*M units");
  }
  for (auto& page : pages_) page.clear();
  size_t next = 0;
  int64_t assigned = 0;
  for (Address page = 1; page <= options_.num_pages; ++page) {
    const int64_t target = page * units / options_.num_pages;
    while (next < records.size() && assigned < target) {
      pages_[static_cast<size_t>(page - 1)].push_back(records[next]);
      assigned += records[next].size;
      ++next;
    }
    SyncPage(page);
  }
  record_count_ = static_cast<int64_t>(records.size());
  tracker_.Reset();
  command_cost_ = CommandCost();
  // Rebuild warning state for the fresh layout.
  std::fill(warning_.begin(), warning_.end(), 0);
  std::fill(dest_.begin(), dest_.end(), 0);
  std::fill(warn_count_subtree_.begin(), warn_count_subtree_.end(), 0);
  std::fill(warn_max_depth_subtree_.begin(), warn_max_depth_subtree_.end(),
            -1);
  for (int v = 1; v < calibrator_.node_count(); ++v) {
    if (spec_.DensityAtLeast(calibrator_.Count(v), calibrator_.PagesIn(v),
                             calibrator_.Depth(v), kThirds2Of3)) {
      Activate(v);
    }
  }
  maintenance_stats_ = Stats();
  return Status::OK();
}

Status VarControl2::ValidateInvariants() const {
  int64_t records = 0;
  bool have_prev = false;
  Key prev = 0;
  for (Address p = 1; p <= options_.num_pages; ++p) {
    const std::vector<VarRecord>& page = pages_[static_cast<size_t>(p - 1)];
    int64_t units = 0;
    for (const VarRecord& r : page) {
      if (have_prev && r.key <= prev) {
        return Status::Corruption("keys out of order");
      }
      prev = r.key;
      have_prev = true;
      units += r.size;
      ++records;
    }
    if (units > options_.D) {
      return Status::Corruption("page above D units at a command boundary");
    }
    if (units != calibrator_.Count(calibrator_.LeafOf(p))) {
      return Status::Corruption("stale unit counter");
    }
  }
  if (records != record_count_) {
    return Status::Corruption("record count mismatch");
  }
  DSF_RETURN_IF_ERROR(calibrator_.ValidateAggregates());
  for (int v = 0; v < calibrator_.node_count(); ++v) {
    const int64_t count = calibrator_.Count(v);
    const int64_t pages = calibrator_.PagesIn(v);
    const int64_t depth = calibrator_.Depth(v);
    if (!spec_.DensityAtMost(count, pages, depth, kThirds1)) {
      return Status::Corruption("BALANCE(d,D) violated in units at node " +
                                std::to_string(v));
    }
    if (warning_[v] != 0 &&
        spec_.DensityAtMost(count, pages, depth, kThirds1Of3)) {
      return Status::Corruption("Fact 5.1a violated at node " +
                                std::to_string(v));
    }
    if (v != calibrator_.root() && warning_[v] == 0 &&
        spec_.DensityAtLeast(count, pages, depth, kThirds2Of3)) {
      return Status::Corruption("Fact 5.1b violated at node " +
                                std::to_string(v));
    }
    if (warning_[v] != 0) {
      const int f = calibrator_.Parent(v);
      if (f == Calibrator::kNoNode) {
        return Status::Corruption("root in warning state");
      }
      if (dest_[v] < calibrator_.RangeLo(f) ||
          dest_[v] > calibrator_.RangeHi(f)) {
        return Status::Corruption("DEST outside RANGE(father)");
      }
    }
  }
  return Status::OK();
}

}  // namespace dsf
