// VarControl2 — CONTROL 2's worst-case maintenance generalized to
// variable-size records. An extension beyond the paper: Willard's 1986
// algorithm assumes unit records, and [BCW85] covers variable sizes only
// with amortized bounds (see varsize/var_file.h). Here the full warning /
// DEST / SHIFT / SELECT / ACTIVATE machinery runs over unit-based
// densities, so every command costs O(J) page accesses even when records
// occupy 1..S units.
//
// What changes versus the fixed-size CONTROL 2:
//   * Records are atomic, so SHIFT's stop condition ("move until some UP
//     node reaches p(x) >= g(x,0)") can overshoot a threshold by up to
//     S-1 units on the final record.
//   * The safety spacing between consecutive thresholds is (D-d)/(3L)
//     units; it must absorb that overshoot, so Create() enforces the
//     widened gap condition (D-d) > 3*S*ceil(log M).
//   * A page may transiently hold up to D + S - 1 units inside a command.

#ifndef DSF_VARSIZE_VAR_CONTROL2_H_
#define DSF_VARSIZE_VAR_CONTROL2_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/calibrator.h"
#include "core/density.h"
#include "storage/io_stats.h"
#include "util/status.h"
#include "varsize/var_file.h"

namespace dsf {

class VarControl2 {
 public:
  struct Options {
    int64_t num_pages = 0;
    int64_t d = 0;                // units per page, density floor
    int64_t D = 0;                // units per page, capacity
    int64_t max_record_size = 1;  // S
    int64_t J = 0;                // 0 = ceil(8 L^2/(D-d))
  };

  struct Stats {
    int64_t activations = 0;
    int64_t shifts = 0;
    int64_t units_shifted = 0;
    int64_t records_shifted = 0;
    int64_t warnings_lowered = 0;
  };

  struct CommandCost {
    int64_t commands = 0;
    int64_t max_accesses = 0;
    int64_t total_accesses = 0;
    double Mean() const {
      return commands == 0 ? 0.0
                           : static_cast<double>(total_accesses) /
                                 static_cast<double>(commands);
    }
  };

  static StatusOr<std::unique_ptr<VarControl2>> Create(
      const Options& options);

  Status Insert(const VarRecord& record);
  Status Delete(Key key);
  StatusOr<VarRecord> Get(Key key);
  bool Contains(Key key) { return Get(key).ok(); }
  Status Scan(Key lo, Key hi, std::vector<VarRecord>* out);
  std::vector<VarRecord> ScanAll();
  Status BulkLoad(const std::vector<VarRecord>& records);

  int64_t record_count() const { return record_count_; }
  int64_t total_units() const { return calibrator_.TotalRecords(); }
  int64_t MaxUnits() const { return spec_.MaxRecords(); }
  int64_t J() const { return j_; }
  IoStats stats() const { return tracker_.stats(); }
  void ResetStats() { tracker_.Reset(); }
  const Stats& maintenance_stats() const { return maintenance_stats_; }
  const CommandCost& command_cost() const { return command_cost_; }

  // Order, unit accounting, page bounds, BALANCE in units, Fact 5.1
  // flag consistency, DEST containment.
  Status ValidateInvariants() const;

 private:
  VarControl2(const Options& options, DensitySpec spec, int64_t j);

  std::vector<VarRecord>& TouchPage(Address page, bool write);
  void SyncPage(Address page);
  Address TargetPageForInsert(Key key) const;

  void SetWarning(int v, bool on);
  void LowerIfCalm(int v);
  void CheckLowerOnPath(Address page);
  void CheckRaiseOnPath(Address page);
  void Activate(int w);
  int SelectNode(Address leaf_page) const;
  void Shift(int v);
  void RunMaintenance(Address leaf_page);

  void BeginCommand();
  void EndCommand();

  Options options_;
  DensitySpec spec_;  // in units
  int64_t j_;
  Calibrator calibrator_;  // counters hold units
  std::vector<std::vector<VarRecord>> pages_;
  AccessTracker tracker_;
  int64_t record_count_ = 0;
  Stats maintenance_stats_;
  CommandCost command_cost_;
  int64_t command_start_accesses_ = 0;

  std::vector<char> warning_;
  std::vector<Address> dest_;
  std::vector<int64_t> warn_count_subtree_;
  std::vector<int64_t> warn_max_depth_subtree_;
};

}  // namespace dsf

#endif  // DSF_VARSIZE_VAR_CONTROL2_H_
