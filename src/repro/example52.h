// Machine-checkable replay of the paper's Example 5.2 / Figure 4.
//
// The example runs CONTROL 2 on an 8-page file with d=9, D=18, J=3,
// starting from occupancies {16,1,0,1,9,9,9,16}, and issues two insertion
// commands: Z1 into page 8, then Z2 into page 1. Figure 4 tabulates the
// per-page record counts at the nine flag-stable moments t0..t8. This
// module replays the example through the real Control2 implementation and
// returns the observed table, so both the unit test and bench E2 can diff
// it against the paper.
//
// Note: the example sits exactly on the gap-condition boundary
// (D - d = 9 = 3*ceil(log 8)), so the replay constructs Control2 with
// allow_gap_violation_for_testing.

#ifndef DSF_REPRO_EXAMPLE52_H_
#define DSF_REPRO_EXAMPLE52_H_

#include <array>
#include <vector>

#include "storage/record.h"
#include "util/status.h"

namespace dsf::repro {

// One flag-stable moment t_i.
struct Example52Snapshot {
  std::array<int64_t, 8> occupancy{};  // N_{L_1} .. N_{L_8}
  bool warn_l1 = false;
  bool warn_l8 = false;
  bool warn_v3 = false;  // the node with RANGE [5,8]
  Address dest_v3 = 0;   // meaningful only while warn_v3
};

struct Example52Result {
  std::vector<Example52Snapshot> moments;  // t0..t8
};

// Figure 4 as printed in the paper: rows t0..t8 of page occupancies.
const std::array<std::array<int64_t, 8>, 9>& Figure4Expected();

// Replays the example through Control2; moments has exactly 9 entries on
// success.
StatusOr<Example52Result> RunExample52();

}  // namespace dsf::repro

#endif  // DSF_REPRO_EXAMPLE52_H_
