#include "repro/example52.h"

#include "core/control2.h"
#include "util/check.h"

namespace dsf::repro {

namespace {

// Node with RANGE(v) == [lo, hi], or kNoNode.
int FindNode(const Calibrator& cal, Address lo, Address hi) {
  for (int v = 0; v < cal.node_count(); ++v) {
    if (cal.RangeLo(v) == lo && cal.RangeHi(v) == hi) return v;
  }
  return Calibrator::kNoNode;
}

Example52Snapshot Snapshot(const Control2& control, int l1, int l8, int v3) {
  Example52Snapshot snap;
  const Calibrator& cal = control.calibrator();
  for (Address p = 1; p <= 8; ++p) {
    snap.occupancy[static_cast<size_t>(p - 1)] = cal.Count(cal.LeafOf(p));
  }
  snap.warn_l1 = control.warning(l1);
  snap.warn_l8 = control.warning(l8);
  snap.warn_v3 = control.warning(v3);
  snap.dest_v3 = control.warning(v3) ? control.dest(v3) : 0;
  return snap;
}

}  // namespace

const std::array<std::array<int64_t, 8>, 9>& Figure4Expected() {
  static const std::array<std::array<int64_t, 8>, 9> kRows = {{
      {16, 1, 0, 1, 9, 9, 9, 16},   // t0
      {16, 1, 0, 1, 9, 9, 9, 17},   // t1
      {16, 1, 0, 1, 9, 9, 15, 11},  // t2
      {16, 1, 0, 1, 9, 9, 15, 11},  // t3
      {16, 2, 0, 0, 9, 9, 15, 11},  // t4
      {17, 2, 0, 0, 9, 9, 15, 11},  // t5
      {4, 15, 0, 0, 9, 9, 15, 11},  // t6
      {15, 4, 0, 0, 9, 9, 15, 11},  // t7
      {15, 9, 0, 0, 4, 9, 15, 11},  // t8
  }};
  return kRows;
}

StatusOr<Example52Result> RunExample52() {
  Control2::Options options;
  options.config.num_pages = 8;
  options.config.d = 9;
  options.config.D = 18;
  options.config.block_size = 1;
  options.J = 3;
  options.allow_gap_violation_for_testing = true;  // D-d = 3*ceil(log M)
  StatusOr<std::unique_ptr<Control2>> made = Control2::Create(options);
  if (!made.ok()) return made.status();
  Control2& control = **made;

  // Initial distribution of Figure 4's t0 row. Keys ascend across pages;
  // page p gets keys p*1000, p*1000+1, ...
  const std::array<int64_t, 8>& t0 = Figure4Expected()[0];
  std::vector<std::vector<Record>> layout(8);
  for (Address p = 1; p <= 8; ++p) {
    for (int64_t i = 0; i < t0[static_cast<size_t>(p - 1)]; ++i) {
      layout[static_cast<size_t>(p - 1)].push_back(
          Record{static_cast<Key>(p * 1000 + i), 0});
    }
  }
  DSF_RETURN_IF_ERROR(control.LoadLayout(layout));

  const Calibrator& cal = control.calibrator();
  const int l1 = cal.LeafOf(1);
  const int l8 = cal.LeafOf(8);
  const int v3 = FindNode(cal, 5, 8);
  DSF_CHECK(v3 != Calibrator::kNoNode) << "node [5,8] missing";

  Example52Result result;
  result.moments.push_back(Snapshot(control, l1, l8, v3));  // t0

  control.SetStepCallback(
      [&](Control2::StablePoint, int64_t) {
        result.moments.push_back(Snapshot(control, l1, l8, v3));
      });

  // Z1: insert a record whose key exceeds everything, landing in page 8.
  DSF_RETURN_IF_ERROR(control.Insert(Record{8999, 0}));  // t1..t4
  // Z2: insert a record whose key precedes everything, landing in page 1.
  DSF_RETURN_IF_ERROR(control.Insert(Record{1, 0}));  // t5..t8
  control.SetStepCallback(nullptr);

  if (result.moments.size() != 9) {
    return Status::Internal("expected 9 flag-stable moments, saw " +
                            std::to_string(result.moments.size()));
  }
  return result;
}

}  // namespace dsf::repro
