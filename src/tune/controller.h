// AdaptiveController — the closed-loop self-tuning controller.
//
// The controller runs *inside* the command loop: ShardedDenseFile calls
// MaybeTune() after every point command (the MaybeDrain piggyback
// pattern — no background thread, no timer), and every
// TuneOptions::tick_every_commands commands that call collects one
// cumulative signal snapshot per shard and feeds it here. Tick() diffs
// the snapshot against the previous tick's to get *windowed* rates and
// decides, per actuator, whether to correct:
//
//   (a) buffer-pool frame balance — the shard with the most window
//       misses receives frames donated by the shard with the fewest,
//       so the global frame budget follows the working set;
//   (b) drain batch / staging capacity — a shard whose staging buffer
//       stays near-full while arrivals outpace drains gets a larger
//       drain batch (amortizing its certified drain budget over more
//       entries) and, when another shard's buffer idles near-empty,
//       capacity donated from it;
//   (c) J-headroom advisory — a shard whose windowed p99 command
//       accesses approach the certifier budget K*(4J+2) is predicted
//       to breach; the controller orders a bounded re-calibration
//       (Compact, which rebuilds density headroom) and, if collapse
//       repeats, a J raise (never below the open-time default:
//       Theorem 5.5's floor), restoring the default once calm.
//
// Every decision is hysteresis-damped (consecutive agreeing ticks to
// arm, cooldown ticks after firing) so one noisy window never moves an
// actuator, and every decision is *advisory*: the owner applies it
// under the shard locks with apply-time clamping (frames conserve
// exactly, staging never shrinks below its fill), and BoundCertifier
// remains the hard envelope — the controller widens or narrows real
// resource allocation but never loosens the certified bound; after a
// J change the certifier is recalibrated so subsequent commands are
// checked against the *new* budget, with the switch itself on the
// audit record (BoundReport::recalibrations).
//
// Thread safety: Tick() and stats() are serialized on an internal
// mutex; concurrent commands that cross the tick boundary at once
// simply queue. Decisions are returned by value, applied outside.

#ifndef DSF_TUNE_CONTROLLER_H_
#define DSF_TUNE_CONTROLLER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "tune/tune_options.h"
#include "util/thread_annotations.h"

namespace dsf {

// Cumulative per-shard signal snapshot, collected by the owner under
// each shard's reader lock. Counters are since-open totals (the
// controller diffs consecutive snapshots itself); *gauge* fields are
// instantaneous.
struct TuneShardSignals {
  int64_t commands = 0;        // point commands completed
  int64_t pool_hits = 0;       // buffer-pool counters (0 when no pool)
  int64_t pool_misses = 0;
  int64_t pool_frames = 0;     // gauge: current frame count
  int64_t pool_dirty = 0;      // gauge: currently dirty frames
  int64_t staging_puts = 0;    // staging counters (0 when staging off)
  int64_t drained_entries = 0;
  int64_t staging_annihilations = 0;  // staged inserts cancelled in memory
  int64_t staging_entries = 0;   // gauge: current fill
  int64_t staging_capacity = 0;  // gauge
  int64_t drain_batch = 0;       // gauge
  int64_t records = 0;           // gauge
  int64_t j = 0;                 // gauge: current maintenance J
  int64_t default_j = 0;         // open-time J — the tuning floor
  int64_t budget = 0;            // certifier envelope; 0 when uncertified
  // Cumulative per-command access histogram buckets (all-zero when the
  // file runs without a metrics registry — the headroom actuator then
  // has no signal and never fires).
  std::array<int64_t, kHistogramBuckets> access_buckets{};
};

// What the controller wants changed. Advisory: the owner applies each
// entry under the proper locks and may clamp or skip (e.g. a pool
// shrink refused while a cursor pins pages).
struct TuneDecision {
  struct FrameMove {
    int from = 0;
    int to = 0;
    int64_t frames = 0;
  };
  struct DrainChange {
    int shard = 0;
    int64_t batch = 0;  // 0 = restore the auto default
  };
  struct StagingMove {
    int from = 0;
    int to = 0;
    int64_t entries = 0;
  };
  struct Recalibration {
    int shard = 0;
    int64_t set_j = 0;  // 0 = keep current J
    bool compact = true;
  };

  std::vector<FrameMove> frame_moves;
  std::vector<DrainChange> drain_changes;
  std::vector<StagingMove> staging_moves;
  std::vector<Recalibration> recalibrations;

  bool empty() const {
    return frame_moves.empty() && drain_changes.empty() &&
           staging_moves.empty() && recalibrations.empty();
  }
};

struct TuneStats {
  int64_t ticks = 0;
  int64_t decisions = 0;        // ticks that proposed at least one change
  int64_t applied_actuations = 0;
  int64_t applied_frames_moved = 0;
  int64_t applied_recalibrations = 0;
};

class AdaptiveController {
 public:
  // `metrics` may be null (controller still works, just unexported).
  // Exports under the dsf_tune_* catalog names; per-shard gauges carry
  // the same shard="i" labels as the rest of the sharded file.
  AdaptiveController(const TuneOptions& options, int num_shards,
                     MetricsRegistry* metrics);

  // One control tick. The first call only seeds the window baseline and
  // returns an empty decision.
  TuneDecision Tick(const std::vector<TuneShardSignals>& now)
      DSF_EXCLUDES(mu_);

  // Owner's report of what was actually applied (post-clamping), so the
  // exported counters reflect reality, not intent.
  void RecordApplied(int64_t actuations, int64_t frames_moved,
                     int64_t recalibrations) DSF_EXCLUDES(mu_);

  TuneStats stats() const DSF_EXCLUDES(mu_);
  const TuneOptions& options() const { return options_; }

 private:
  // Per-shard hysteresis state for one actuator: how many consecutive
  // ticks the trigger condition held, and how many cooldown ticks
  // remain before it may fire again.
  struct Damper {
    int streak = 0;
    int cooldown = 0;

    // Feeds one tick's trigger evaluation; returns true when the
    // actuator should fire now (streak reached with cooldown expired —
    // firing restarts the cooldown and clears the streak).
    bool Step(bool triggered, int need_streak, int cooldown_ticks) {
      if (cooldown > 0) --cooldown;
      if (!triggered) {
        streak = 0;
        return false;
      }
      if (++streak < need_streak || cooldown > 0) return false;
      streak = 0;
      cooldown = cooldown_ticks;
      return true;
    }
  };

  void DecidePool(const std::vector<TuneShardSignals>& now,
                  TuneDecision* decision) DSF_REQUIRES(mu_);
  void DecideDrain(const std::vector<TuneShardSignals>& now,
                   TuneDecision* decision) DSF_REQUIRES(mu_);
  void DecideHeadroom(const std::vector<TuneShardSignals>& now,
                      TuneDecision* decision) DSF_REQUIRES(mu_);
  void PublishGauges(const std::vector<TuneShardSignals>& now)
      DSF_REQUIRES(mu_);

  const TuneOptions options_;
  const int num_shards_;

  mutable Mutex mu_;
  bool seeded_ DSF_GUARDED_BY(mu_) = false;
  std::vector<TuneShardSignals> prev_ DSF_GUARDED_BY(mu_);
  // Actuator dampers. The pool balancer's streak additionally requires
  // the same (donor, recipient) pair across the streak.
  Damper pool_damper_ DSF_GUARDED_BY(mu_);
  int pool_last_from_ DSF_GUARDED_BY(mu_) = -1;
  int pool_last_to_ DSF_GUARDED_BY(mu_) = -1;
  // Regret guard state: which recipient the last frame move targeted,
  // the window misses that justified it, how many ticks until the move
  // is judged, and how many backoff ticks remain after a judged regret.
  int pool_eval_to_ DSF_GUARDED_BY(mu_) = -1;
  int64_t pool_eval_misses_ DSF_GUARDED_BY(mu_) = 0;
  int pool_eval_wait_ DSF_GUARDED_BY(mu_) = 0;
  int pool_backoff_ DSF_GUARDED_BY(mu_) = 0;
  std::vector<Damper> drain_up_ DSF_GUARDED_BY(mu_);
  std::vector<Damper> drain_down_ DSF_GUARDED_BY(mu_);
  std::vector<Damper> drain_shrink_ DSF_GUARDED_BY(mu_);
  // 1 while shard i's drain batch sits above the auto default (so the
  // restore path only fires after an actual raise).
  std::vector<char> drain_raised_ DSF_GUARDED_BY(mu_);
  std::vector<Damper> headroom_ DSF_GUARDED_BY(mu_);
  // Consecutive *calm* ticks per shard while J sits above the default
  // (drives the restore-to-default path), and recalibrations ordered
  // within the recent-collapse horizon (drives the J raise).
  std::vector<int> calm_streak_ DSF_GUARDED_BY(mu_);
  std::vector<int> recent_recals_ DSF_GUARDED_BY(mu_);
  TuneStats stats_ DSF_GUARDED_BY(mu_);

  // Cached metric handles (null without a registry).
  Counter* m_ticks_ = nullptr;
  Counter* m_actuations_ = nullptr;
  Counter* m_frames_moved_ = nullptr;
  Counter* m_recalibrations_ = nullptr;
  Gauge* m_headroom_ = nullptr;
  std::vector<Gauge*> m_pool_frames_;
  std::vector<Gauge*> m_drain_batch_;
  std::vector<Gauge*> m_staging_capacity_;
  std::vector<Gauge*> m_j_;
};

}  // namespace dsf

#endif  // DSF_TUNE_CONTROLLER_H_
