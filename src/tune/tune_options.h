// TuneOptions — configuration for the closed-loop self-tuning
// controller (tune/controller.h; see docs/TUNING.md).
//
// Kept in its own header with no dependencies so ShardedDenseFile's
// Options can embed it without pulling the controller (and its obs/
// includes) into every translation unit that opens a sharded file.

#ifndef DSF_TUNE_TUNE_OPTIONS_H_
#define DSF_TUNE_TUNE_OPTIONS_H_

#include <cstdint>

namespace dsf {

struct TuneOptions {
  // Master switch; everything below is ignored when false.
  bool enabled = false;

  // Controller cadence: one tick (signal collection + decision) per this
  // many point commands, piggybacked on the command that crosses the
  // boundary — the MaybeDrain pattern, no background thread.
  int64_t tick_every_commands = 256;

  // Hysteresis: an actuator fires only after this many consecutive ticks
  // agree on the same correction (damps one-window noise) ...
  int consecutive_ticks = 2;
  // ... and then holds quiet for this many ticks before it may fire
  // again (lets the previous correction's effect reach the signals).
  int cooldown_ticks = 4;

  // --- Actuator (a): per-shard buffer-pool frame balance ---
  bool tune_pool = true;
  // No shard's pool ever shrinks below this.
  int64_t min_frames_per_shard = 1;
  // Window miss counts below this are noise the frame balancer ignores.
  int64_t min_miss_signal = 16;
  // Regret guard: once a frame move has had a window to settle, the
  // recipient's window misses are re-measured; if they failed to drop
  // by at least a quarter the working set evidently dwarfs the pool
  // (the move bought nothing but flush churn) and the balancer
  // suspends further moves for this many ticks. 0 disables the guard.
  int pool_regret_backoff_ticks = 6;

  // --- Actuator (b): drain batch + staging-capacity balance ---
  bool tune_drain = true;
  // No shard's staging capacity ever shrinks below this (entries).
  int64_t min_staging_entries = 8;
  // Floor for the absorption shrink: when window annihilations show the
  // staging buffer cancelling work in memory, the drain batch is halved
  // (a fuller buffer absorbs more), but never below this.
  int64_t min_drain_batch = 2;

  // --- Actuator (c): J-headroom advisory ---
  bool tune_headroom = true;
  // Arms when windowed p99 command accesses reach this fraction of the
  // certifier budget, in thousandths (850 = 85%).
  int64_t headroom_trigger_x1000 = 850;
  // Repeated collapse may boost J up to default * this; J is restored to
  // the default after a sustained calm period. Never below the default —
  // Theorem 5.5's guarantee is the floor.
  int64_t j_max_multiplier = 4;
};

}  // namespace dsf

#endif  // DSF_TUNE_TUNE_OPTIONS_H_
