#include "tune/controller.h"

#include <algorithm>
#include <string>

#include "obs/metric_names.h"
#include "util/check.h"

namespace dsf {

namespace {

// Same rendering as ShardedDenseFile's per-shard metric labels, so the
// controller's gauges line up with the shard gauges in one export.
std::string ShardLabel(int shard) {
  return "shard=\"" + std::to_string(shard) + "\"";
}

TuneOptions Sanitize(TuneOptions o) {
  o.tick_every_commands = std::max<int64_t>(1, o.tick_every_commands);
  o.consecutive_ticks = std::max(1, o.consecutive_ticks);
  o.cooldown_ticks = std::max(0, o.cooldown_ticks);
  o.min_frames_per_shard = std::max<int64_t>(1, o.min_frames_per_shard);
  o.min_miss_signal = std::max<int64_t>(1, o.min_miss_signal);
  o.pool_regret_backoff_ticks = std::max(0, o.pool_regret_backoff_ticks);
  o.min_staging_entries = std::max<int64_t>(1, o.min_staging_entries);
  o.min_drain_batch = std::max<int64_t>(1, o.min_drain_batch);
  o.headroom_trigger_x1000 =
      std::min<int64_t>(1000, std::max<int64_t>(1, o.headroom_trigger_x1000));
  o.j_max_multiplier = std::max<int64_t>(1, o.j_max_multiplier);
  return o;
}

}  // namespace

AdaptiveController::AdaptiveController(const TuneOptions& options,
                                       int num_shards,
                                       MetricsRegistry* metrics)
    : options_(Sanitize(options)), num_shards_(num_shards) {
  DSF_CHECK(num_shards >= 1) << "controller needs at least one shard";
  MutexLock lock(mu_);
  drain_up_.resize(static_cast<size_t>(num_shards));
  drain_down_.resize(static_cast<size_t>(num_shards));
  drain_shrink_.resize(static_cast<size_t>(num_shards));
  drain_raised_.resize(static_cast<size_t>(num_shards), 0);
  headroom_.resize(static_cast<size_t>(num_shards));
  calm_streak_.resize(static_cast<size_t>(num_shards), 0);
  recent_recals_.resize(static_cast<size_t>(num_shards), 0);
  if (metrics != nullptr) {
    m_ticks_ = metrics->FindOrCreateCounter(kMetricTuneTicks);
    m_actuations_ = metrics->FindOrCreateCounter(kMetricTuneActuations);
    m_frames_moved_ = metrics->FindOrCreateCounter(kMetricTuneFramesMoved);
    m_recalibrations_ =
        metrics->FindOrCreateCounter(kMetricTuneRecalibrations);
    m_headroom_ = metrics->FindOrCreateGauge(kMetricTuneHeadroomX1000);
    for (int i = 0; i < num_shards; ++i) {
      const std::string label = ShardLabel(i);
      m_pool_frames_.push_back(
          metrics->FindOrCreateGauge(kMetricTunePoolFrames, label));
      m_drain_batch_.push_back(
          metrics->FindOrCreateGauge(kMetricTuneDrainBatch, label));
      m_staging_capacity_.push_back(
          metrics->FindOrCreateGauge(kMetricTuneStagingCapacity, label));
      m_j_.push_back(metrics->FindOrCreateGauge(kMetricTuneJ, label));
    }
  }
}

TuneDecision AdaptiveController::Tick(
    const std::vector<TuneShardSignals>& now) {
  MutexLock lock(mu_);
  DSF_CHECK(static_cast<int>(now.size()) == num_shards_)
      << "signal vector covers " << now.size() << " shards, controller built "
      << "for " << num_shards_;
  ++stats_.ticks;
  if (m_ticks_ != nullptr) m_ticks_->Increment();
  PublishGauges(now);

  TuneDecision decision;
  if (!seeded_) {
    // First tick: no window to diff yet — just seed the baseline.
    prev_ = now;
    seeded_ = true;
    return decision;
  }
  if (options_.tune_pool) DecidePool(now, &decision);
  if (options_.tune_drain) DecideDrain(now, &decision);
  if (options_.tune_headroom) DecideHeadroom(now, &decision);
  prev_ = now;
  if (!decision.empty()) ++stats_.decisions;
  return decision;
}

// Actuator (a): move frames from the coldest pool to the hottest. The
// trigger is a window-miss imbalance — recipient misses must dominate
// donor misses (2x + noise floor) — and the streak only accumulates
// while consecutive ticks elect the *same* donor/recipient pair, so a
// wandering hotspot never triggers a move it would immediately regret.
void AdaptiveController::DecidePool(const std::vector<TuneShardSignals>& now,
                                    TuneDecision* decision) {
  // Judge the previous move once it has had a settling window: if the
  // recipient's misses failed to drop by at least a tenth of what
  // justified the move, the frames bought nothing (the working set
  // dwarfs the pool — a drifting hotspot, say) and the balancer backs
  // off rather than chase it with more futile flush-heavy moves.
  if (pool_eval_wait_ > 0 && --pool_eval_wait_ == 0 && pool_eval_to_ >= 0) {
    const int64_t after =
        now[pool_eval_to_].pool_misses - prev_[pool_eval_to_].pool_misses;
    if (10 * after >= 9 * pool_eval_misses_) {
      pool_backoff_ = options_.pool_regret_backoff_ticks;
    }
    pool_eval_to_ = -1;
  }
  if (pool_backoff_ > 0) {
    --pool_backoff_;
    pool_damper_.Step(false, options_.consecutive_ticks,
                      options_.cooldown_ticks);
    return;
  }
  int to = -1;
  int64_t to_misses = -1;
  for (int i = 0; i < num_shards_; ++i) {
    if (now[i].pool_frames <= 0) continue;  // shard runs uncached
    const int64_t w = now[i].pool_misses - prev_[i].pool_misses;
    if (w > to_misses) {
      to = i;
      to_misses = w;
    }
  }
  int from = -1;
  int64_t from_misses = 0;
  for (int i = 0; i < num_shards_; ++i) {
    if (i == to || now[i].pool_frames <= options_.min_frames_per_shard) {
      continue;
    }
    const int64_t w = now[i].pool_misses - prev_[i].pool_misses;
    if (from < 0 || w < from_misses) {
      from = i;
      from_misses = w;
    }
  }
  const bool triggered =
      to >= 0 && from >= 0 && to_misses >= options_.min_miss_signal &&
      to_misses >= 2 * from_misses + options_.min_miss_signal;
  if (triggered && (to != pool_last_to_ || from != pool_last_from_)) {
    pool_damper_.streak = 0;  // pair changed — restart the agreement
  }
  pool_last_to_ = to;
  pool_last_from_ = from;
  if (!pool_damper_.Step(triggered, options_.consecutive_ticks,
                         options_.cooldown_ticks)) {
    return;
  }
  // Donate a quarter of the donor's pool per firing — geometric, so
  // repeated firings converge without ever stranding the donor below
  // the floor.
  const int64_t spare = now[from].pool_frames - options_.min_frames_per_shard;
  const int64_t frames =
      std::max<int64_t>(1, std::min(now[from].pool_frames / 4, spare));
  decision->frame_moves.push_back(TuneDecision::FrameMove{from, to, frames});
  if (options_.pool_regret_backoff_ticks > 0) {
    pool_eval_to_ = to;
    pool_eval_misses_ = to_misses;
    pool_eval_wait_ = 2;  // one window to settle, judged on the next
  }
}

// Actuator (b): a shard whose staging buffer sits >= 3/4 full while
// window arrivals outpace drains gets its drain batch doubled (one
// piggybacked drain then retires more entries against the same
// certified per-command budget) and, if some other shard's buffer
// idles <= 1/10 full with capacity to spare, staged capacity donated.
// When the pressure clears (fill <= 1/4) the batch returns to the
// auto default.
//
// The opposite correction — absorption shrink — fires when window
// annihilations show the buffer cancelling a meaningful share of the
// arriving work in memory (delete-heavy or churny workloads): a
// smaller drain batch keeps the buffer fuller, entries stay resident
// longer, and more inserts die to later deletes before ever touching
// the file. The shrink jumps straight to min_drain_batch — there is no
// gradient worth descending, because the correction is cheap to undo:
// if a burst arrives the pressure branch doubles back out of the floor
// within two windows, while every window spent at the floor is file
// work saved.
void AdaptiveController::DecideDrain(const std::vector<TuneShardSignals>& now,
                                     TuneDecision* decision) {
  for (int i = 0; i < num_shards_; ++i) {
    const int64_t cap = now[i].staging_capacity;
    if (cap <= 0) {
      // Staging off for this shard; still step the dampers so cooldowns
      // tick down uniformly.
      drain_up_[static_cast<size_t>(i)].Step(false, options_.consecutive_ticks,
                                             options_.cooldown_ticks);
      drain_down_[static_cast<size_t>(i)].Step(
          false, options_.consecutive_ticks, options_.cooldown_ticks);
      drain_shrink_[static_cast<size_t>(i)].Step(
          false, options_.consecutive_ticks, options_.cooldown_ticks);
      continue;
    }
    const int64_t arrivals = now[i].staging_puts - prev_[i].staging_puts;
    const int64_t drains = now[i].drained_entries - prev_[i].drained_entries;
    const bool pressed =
        now[i].staging_entries * 4 >= cap * 3 && arrivals > drains;
    const bool idle = now[i].staging_entries * 4 <= cap;

    if (drain_up_[static_cast<size_t>(i)].Step(pressed,
                                               options_.consecutive_ticks,
                                               options_.cooldown_ticks)) {
      decision->drain_changes.push_back(
          TuneDecision::DrainChange{i, now[i].drain_batch * 2});
      drain_raised_[static_cast<size_t>(i)] = 1;
      // Capacity donation: the emptiest other shard with room to give.
      int from = -1;
      int64_t best_fill_x1000 = 101;  // <= 10% qualifies (fill in x1000)
      for (int j = 0; j < num_shards_; ++j) {
        const int64_t jcap = now[j].staging_capacity;
        if (j == i || jcap < 2 * options_.min_staging_entries) continue;
        const int64_t fill_x1000 = 1000 * now[j].staging_entries / jcap;
        if (fill_x1000 < best_fill_x1000) {
          from = j;
          best_fill_x1000 = fill_x1000;
        }
      }
      if (from >= 0) {
        const int64_t give =
            (now[from].staging_capacity - options_.min_staging_entries) / 2;
        if (give > 0) {
          decision->staging_moves.push_back(
              TuneDecision::StagingMove{from, i, give});
        }
      }
    }
    // Absorption shrink: the window annihilated staged work in memory
    // while the buffer was not under pressure, and the batch is above
    // the floor. Any sustained annihilation is evidence enough — the
    // observed rate is attenuated by the current fill (a half-empty
    // buffer can only absorb deletes aimed at the few entries still
    // resident), so demanding a high measured rate before shrinking
    // would wait for evidence the shrink itself produces. Requires a
    // full window of arrivals so a trickle can't masquerade as a
    // signal.
    const int64_t absorbed =
        now[i].staging_annihilations - prev_[i].staging_annihilations;
    const bool absorbing = !pressed && absorbed > 0 &&
                           arrivals >= options_.min_staging_entries &&
                           now[i].drain_batch > options_.min_drain_batch;
    if (drain_shrink_[static_cast<size_t>(i)].Step(absorbing,
                                                   options_.consecutive_ticks,
                                                   options_.cooldown_ticks)) {
      decision->drain_changes.push_back(
          TuneDecision::DrainChange{i, options_.min_drain_batch});
      drain_raised_[static_cast<size_t>(i)] = 1;
    }
    const bool restore = idle && drain_raised_[static_cast<size_t>(i)] != 0;
    if (drain_down_[static_cast<size_t>(i)].Step(restore,
                                                 options_.consecutive_ticks,
                                                 options_.cooldown_ticks)) {
      decision->drain_changes.push_back(TuneDecision::DrainChange{i, 0});
      drain_raised_[static_cast<size_t>(i)] = 0;
    }
  }
}

// Actuator (c): the J-headroom advisory. Windowed p99 command accesses
// (upper-edge estimate — never understates, so it errs toward acting
// early) approaching the certified budget K*(4J+2) predicts a breach;
// the response is a bounded re-calibration — Compact rebuilds uniform
// density, resetting the evolutionary state that was eating headroom —
// and, when collapse recurs within the horizon, a J raise (capped at
// default * j_max_multiplier, floored at the open-time default). A
// sustained calm stretch restores the default J so the steady-state
// per-command ceiling comes back down.
void AdaptiveController::DecideHeadroom(
    const std::vector<TuneShardSignals>& now, TuneDecision* decision) {
  for (int i = 0; i < num_shards_; ++i) {
    const size_t si = static_cast<size_t>(i);
    const int64_t budget = now[i].budget;
    std::array<int64_t, kHistogramBuckets> window{};
    int64_t count = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      window[static_cast<size_t>(b)] = now[i].access_buckets[static_cast<size_t>(b)] -
                                       prev_[i].access_buckets[static_cast<size_t>(b)];
      count += window[static_cast<size_t>(b)];
    }
    const int64_t p99 =
        count > 0 ? Histogram::QuantileFromBuckets(window, 0.99) : 0;
    const bool collapse = budget > 0 && count > 0 &&
                          1000 * p99 >= options_.headroom_trigger_x1000 * budget;

    if (headroom_[si].Step(collapse, options_.consecutive_ticks,
                           options_.cooldown_ticks)) {
      TuneDecision::Recalibration recal;
      recal.shard = i;
      recal.compact = true;
      ++recent_recals_[si];
      if (recent_recals_[si] >= 2) {
        // Compact alone did not hold the line — raise J (doubling,
        // capped), which widens the certified envelope itself.
        const int64_t cap = now[i].default_j * options_.j_max_multiplier;
        const int64_t want = std::min(cap, 2 * std::max<int64_t>(1, now[i].j));
        if (want > now[i].j) recal.set_j = want;
      }
      decision->recalibrations.push_back(recal);
      calm_streak_[si] = 0;
    } else if (!collapse) {
      if (++calm_streak_[si] >= 2 * std::max(1, options_.cooldown_ticks)) {
        if (now[i].j > now[i].default_j && now[i].default_j >= 1) {
          // Calm long enough: restore the open-time J (no Compact —
          // narrowing the envelope needs no density repair).
          decision->recalibrations.push_back(
              TuneDecision::Recalibration{i, now[i].default_j, false});
        }
        recent_recals_[si] = 0;
        calm_streak_[si] = 0;
      }
    } else {
      calm_streak_[si] = 0;
    }
  }
}

void AdaptiveController::PublishGauges(
    const std::vector<TuneShardSignals>& now) {
  for (int i = 0; i < num_shards_; ++i) {
    const size_t si = static_cast<size_t>(i);
    if (si < m_pool_frames_.size() && m_pool_frames_[si] != nullptr) {
      m_pool_frames_[si]->Set(now[i].pool_frames);
      m_drain_batch_[si]->Set(now[i].drain_batch);
      m_staging_capacity_[si]->Set(now[i].staging_capacity);
      m_j_[si]->Set(now[i].j);
    }
  }
  // Worst-case (minimum) remaining headroom across certified shards,
  // from the windowed p99 when a window exists.
  if (m_headroom_ == nullptr || !seeded_) return;
  int64_t worst = -1;
  for (int i = 0; i < num_shards_; ++i) {
    if (now[i].budget <= 0) continue;
    std::array<int64_t, kHistogramBuckets> window{};
    int64_t count = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      window[static_cast<size_t>(b)] =
          now[i].access_buckets[static_cast<size_t>(b)] -
          prev_[i].access_buckets[static_cast<size_t>(b)];
      count += window[static_cast<size_t>(b)];
    }
    if (count <= 0) continue;
    const int64_t p99 = Histogram::QuantileFromBuckets(window, 0.99);
    const int64_t headroom_x1000 =
        1000 * (now[i].budget - std::min(p99, now[i].budget)) / now[i].budget;
    if (worst < 0 || headroom_x1000 < worst) worst = headroom_x1000;
  }
  if (worst >= 0) m_headroom_->Set(worst);
}

void AdaptiveController::RecordApplied(int64_t actuations,
                                       int64_t frames_moved,
                                       int64_t recalibrations) {
  MutexLock lock(mu_);
  stats_.applied_actuations += actuations;
  stats_.applied_frames_moved += frames_moved;
  stats_.applied_recalibrations += recalibrations;
  if (m_actuations_ != nullptr && actuations > 0) {
    m_actuations_->Increment(actuations);
  }
  if (m_frames_moved_ != nullptr && frames_moved > 0) {
    m_frames_moved_->Increment(frames_moved);
  }
  if (m_recalibrations_ != nullptr && recalibrations > 0) {
    m_recalibrations_->Increment(recalibrations);
  }
}

TuneStats AdaptiveController::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace dsf
