// Memtable — the in-memory sorted staging buffer for write-burst ingest.
//
// A fixed-capacity, binary-searched vector of staged mutations mounted in
// front of a DenseFile (see DenseFile::Options::staging_entries and
// docs/INGEST.md). Point writes land here in O(log n) comparisons + one
// O(n) in-memory shift and zero page accesses; a bounded drain scheduler
// later moves entries into the file through ordinary certified commands.
// The memtable itself is deliberately dumb: it stores entries in strict
// key order and keeps per-kind counts — the staging *semantics* (when an
// insert becomes an update, when a delete annihilates a staged insert,
// when a drain step runs) live in DenseFile, which owns the file the
// semantics are defined against.
//
// Every entry is one of three kinds, and the kind is an auditable claim
// about the durable file (analysis/auditor.h checks all three):
//
//   kInsert    — key is NOT in the file; drains as Insert(record).
//   kUpdate    — key IS in the file with an older value; drains as
//                Delete(key) then Insert(record).
//   kTombstone — key IS in the file; drains as Delete(key).
//
// At most one entry per key. The merged view a reader must see is
//   file records − {tombstoned keys} − {updated keys' old values}
//   + {kInsert records} + {kUpdate records}.
//
// Durability caveat: staged entries live only in RAM. A crash loses
// everything that has not drained — the file itself stays crash-safe
// (drains are ordinary commands), but callers who need a durability
// point must call DenseFile::FlushStaging() first.
//
// The buffer is both entry- and byte-budgeted: capacity is the smaller
// of max_entries and max_bytes / sizeof(StagedEntry) (whichever are set).

#ifndef DSF_INGEST_MEMTABLE_H_
#define DSF_INGEST_MEMTABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/record.h"
#include "util/status.h"

namespace dsf {

struct StagedEntry {
  enum class Kind {
    kInsert,     // key absent from the file; record is the new value
    kUpdate,     // key present in the file; record is the replacement
    kTombstone,  // key present in the file; record.value is unused (0)
  };

  Record record;
  Kind kind = Kind::kInsert;
};

const char* StagedEntryKindToString(StagedEntry::Kind kind);

// Counters for the staging layer, surfaced per file (and summed across
// shards by ShardedDenseFile::staging_stats). Mirrors the dsf_staging_*
// metric series in obs/metric_names.h.
struct StagingStats {
  int64_t puts = 0;             // mutations absorbed into staging
  int64_t hits = 0;             // point reads answered from staging
  int64_t annihilations = 0;    // staged inserts cancelled by deletes
  int64_t drain_steps = 0;      // bounded drain steps executed
  int64_t drained_entries = 0;  // entries moved into the file
  int64_t entries = 0;          // currently staged (a gauge, not a sum)
  // Staged-entry budget (a gauge). Summed across shards this is the
  // whole file's staging capacity, which makes budget-split policies
  // (ShardedDenseFile::Options::staging_bytes) externally checkable.
  int64_t capacity = 0;

  StagingStats& operator+=(const StagingStats& other);
};

class Memtable {
 public:
  struct Options {
    // Maximum staged entries; 0 = unlimited by count.
    int64_t max_entries = 0;
    // Maximum staged bytes (entries * sizeof(StagedEntry)); 0 = unlimited
    // by bytes. At least one of the two budgets must be set.
    int64_t max_bytes = 0;
  };

  explicit Memtable(const Options& options);

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  bool empty() const { return entries_.empty(); }
  int64_t bytes() const {
    return size() * static_cast<int64_t>(sizeof(StagedEntry));
  }
  // The resolved entry capacity (min of the two budgets).
  int64_t capacity() const { return capacity_; }
  bool full() const { return size() >= capacity_; }

  // Retargets the entry budget — the staging-capacity actuator behind
  // the self-tuning controller's cross-shard donation (tune/). Clamped
  // to >= 1 and never below the current size: staged entries are never
  // dropped, and the auditor's size <= capacity invariant must hold at
  // every instant, so a shrink lands only as low as the entries already
  // present (the buffer reads full and drains bring the size down).
  // Returns the capacity actually installed.
  int64_t SetCapacity(int64_t new_capacity);

  // The entry for `key`, or nullptr. O(log n).
  const StagedEntry* Find(Key key) const;

  // Stages a new entry (key must not be present — DCHECKed). Fails with
  // CapacityExceeded when the buffer is full; callers drain first.
  Status Add(const Record& record, StagedEntry::Kind kind);

  // Rewrites the entry for `key` (record and kind), keeping the per-kind
  // counts honest. Returns false if the key is not staged.
  bool Reassign(Key key, const Record& record, StagedEntry::Kind kind);

  // Removes the entry for `key`; false if absent.
  bool Erase(Key key);

  // The smallest-key entry; buffer must be non-empty.
  const StagedEntry& front() const;
  void PopFront();

  void Clear();

  // Entries in strict key order — the auditor's, the merge paths' and the
  // cursor overlay's view. The reference stays valid only until the next
  // mutation.
  const std::vector<StagedEntry>& entries() const { return entries_; }
  // Index of the first entry with entry.record.key >= key.
  int64_t LowerBound(Key key) const;

  int64_t insert_count() const { return insert_count_; }
  int64_t update_count() const { return update_count_; }
  int64_t tombstone_count() const { return tombstone_count_; }
  // What staging adds to the merged record count: inserts make a record
  // visible, tombstones hide one, updates replace in place.
  int64_t net_size() const { return insert_count_ - tombstone_count_; }

  // Cheap self-check: strict key order, counts consistent, within
  // capacity. The file-membership half of the staging invariants needs
  // the durable file and lives in Auditor::AuditStaging.
  Status ValidateOrder() const;

 private:
  std::vector<StagedEntry>::iterator Position(Key key);

  void CountKind(StagedEntry::Kind kind, int64_t delta);

  int64_t capacity_;
  std::vector<StagedEntry> entries_;  // strictly ascending by record.key
  int64_t insert_count_ = 0;
  int64_t update_count_ = 0;
  int64_t tombstone_count_ = 0;
};

}  // namespace dsf

#endif  // DSF_INGEST_MEMTABLE_H_
