#include "ingest/memtable.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/check.h"

namespace dsf {

namespace {

bool EntryKeyLess(const StagedEntry& a, const StagedEntry& b) {
  return a.record.key < b.record.key;
}

}  // namespace

const char* StagedEntryKindToString(StagedEntry::Kind kind) {
  switch (kind) {
    case StagedEntry::Kind::kInsert:
      return "INSERT";
    case StagedEntry::Kind::kUpdate:
      return "UPDATE";
    case StagedEntry::Kind::kTombstone:
      return "TOMBSTONE";
  }
  return "UNKNOWN";
}

StagingStats& StagingStats::operator+=(const StagingStats& other) {
  puts += other.puts;
  hits += other.hits;
  annihilations += other.annihilations;
  drain_steps += other.drain_steps;
  drained_entries += other.drained_entries;
  entries += other.entries;
  capacity += other.capacity;
  return *this;
}

Memtable::Memtable(const Options& options) {
  DSF_CHECK(options.max_entries > 0 || options.max_bytes > 0)
      << "memtable needs an entry or byte budget";
  int64_t cap = std::numeric_limits<int64_t>::max();
  if (options.max_entries > 0) cap = options.max_entries;
  if (options.max_bytes > 0) {
    cap = std::min<int64_t>(
        cap, std::max<int64_t>(
                 1, options.max_bytes /
                        static_cast<int64_t>(sizeof(StagedEntry))));
  }
  capacity_ = cap;
  entries_.reserve(static_cast<size_t>(
      std::min<int64_t>(capacity_, int64_t{1} << 20)));
}

int64_t Memtable::SetCapacity(int64_t new_capacity) {
  capacity_ = std::max<int64_t>({int64_t{1}, new_capacity, size()});
  return capacity_;
}

std::vector<StagedEntry>::iterator Memtable::Position(Key key) {
  return std::lower_bound(entries_.begin(), entries_.end(),
                          StagedEntry{Record{key, 0}, StagedEntry::Kind::kInsert},
                          EntryKeyLess);
}

const StagedEntry* Memtable::Find(Key key) const {
  const int64_t i = LowerBound(key);
  if (i == size() || entries_[static_cast<size_t>(i)].record.key != key) {
    return nullptr;
  }
  return &entries_[static_cast<size_t>(i)];
}

int64_t Memtable::LowerBound(Key key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(),
      StagedEntry{Record{key, 0}, StagedEntry::Kind::kInsert}, EntryKeyLess);
  return static_cast<int64_t>(it - entries_.begin());
}

Status Memtable::Add(const Record& record, StagedEntry::Kind kind) {
  if (full()) {
    return Status::CapacityExceeded("staging buffer full");
  }
  const auto it = Position(record.key);
  DSF_DCHECK(it == entries_.end() || it->record.key != record.key)
      << "Add on an already-staged key " << record.key;
  entries_.insert(it, StagedEntry{record, kind});
  CountKind(kind, +1);
  return Status::OK();
}

bool Memtable::Reassign(Key key, const Record& record,
                        StagedEntry::Kind kind) {
  const auto it = Position(key);
  if (it == entries_.end() || it->record.key != key) return false;
  DSF_DCHECK(record.key == key) << "Reassign must keep the key";
  CountKind(it->kind, -1);
  it->record = record;
  it->kind = kind;
  CountKind(kind, +1);
  return true;
}

bool Memtable::Erase(Key key) {
  const auto it = Position(key);
  if (it == entries_.end() || it->record.key != key) return false;
  CountKind(it->kind, -1);
  entries_.erase(it);
  return true;
}

const StagedEntry& Memtable::front() const {
  DSF_CHECK(!entries_.empty()) << "front() on empty memtable";
  return entries_.front();
}

void Memtable::PopFront() {
  DSF_CHECK(!entries_.empty()) << "PopFront() on empty memtable";
  CountKind(entries_.front().kind, -1);
  entries_.erase(entries_.begin());
}

void Memtable::Clear() {
  entries_.clear();
  insert_count_ = 0;
  update_count_ = 0;
  tombstone_count_ = 0;
}

Status Memtable::ValidateOrder() const {
  if (size() > capacity_) {
    return Status::Corruption("memtable holds " + std::to_string(size()) +
                              " entries over capacity " +
                              std::to_string(capacity_));
  }
  int64_t inserts = 0;
  int64_t updates = 0;
  int64_t tombstones = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0 && entries_[i - 1].record.key >= entries_[i].record.key) {
      return Status::Corruption(
          "memtable keys not strictly ascending at index " +
          std::to_string(i));
    }
    switch (entries_[i].kind) {
      case StagedEntry::Kind::kInsert:
        ++inserts;
        break;
      case StagedEntry::Kind::kUpdate:
        ++updates;
        break;
      case StagedEntry::Kind::kTombstone:
        ++tombstones;
        break;
    }
  }
  if (inserts != insert_count_ || updates != update_count_ ||
      tombstones != tombstone_count_) {
    return Status::Corruption("memtable per-kind counts out of sync");
  }
  return Status::OK();
}

void Memtable::CountKind(StagedEntry::Kind kind, int64_t delta) {
  switch (kind) {
    case StagedEntry::Kind::kInsert:
      insert_count_ += delta;
      break;
    case StagedEntry::Kind::kUpdate:
      update_count_ += delta;
      break;
    case StagedEntry::Kind::kTombstone:
      tombstone_count_ += delta;
      break;
  }
}

}  // namespace dsf
