#include "lexer.h"

#include <cctype>
#include <cstring>

namespace dsflint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators, longest first (maximal munch).
const char* kPunct3[] = {"<<=", ">>=", "->*", "...", "<=>"};
const char* kPunct2[] = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=",
                         "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
                         "|=", "^=", "++", "--", ".*", "##"};

}  // namespace

bool SourceFile::Allowed(const std::string& rule, int line) const {
  const std::string needle = "lint:allow(" + rule + ")";
  const int lo = line > 3 ? line - 3 : 1;
  for (auto it = comments.lower_bound(lo);
       it != comments.end() && it->first <= line; ++it) {
    if (it->second.find(needle) != std::string::npos) return true;
  }
  return false;
}

SourceFile Lex(const std::string& path, const std::string& text) {
  SourceFile out;
  out.path = path;
  size_t i = 0;
  const size_t n = text.size();
  int line = 1;

  auto advance_line = [&](char c) {
    if (c == '\n') ++line;
  };
  auto add_comment = [&](int at, const std::string& body) {
    out.comments[at] += body;
  };

  while (i < n) {
    const char c = text[i];
    // Whitespace.
    if (c == '\n' || c == '\r' || c == ' ' || c == '\t' || c == '\f' ||
        c == '\v') {
      advance_line(c);
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const size_t start = i;
      while (i < n && text[i] != '\n') ++i;
      add_comment(line, text.substr(start, i - start));
      continue;
    }
    // Block comment (may span lines; body attributed to each line it
    // covers so lint:allow proximity works).
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      size_t seg_start = i;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          add_comment(line, text.substr(seg_start, i - seg_start));
          ++line;
          seg_start = i + 1;
        }
        ++i;
      }
      add_comment(line, text.substr(seg_start, i >= seg_start ? i - seg_start
                                                              : 0));
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Preprocessor directive: drop to end of line, honoring backslash
    // continuations (macro bodies are not analyzable token text).
    if (c == '#') {
      while (i < n) {
        if (text[i] == '\n') {
          // Continuation if previous non-space char is a backslash.
          size_t j = i;
          while (j > 0 && (text[j - 1] == ' ' || text[j - 1] == '\t' ||
                           text[j - 1] == '\r')) {
            --j;
          }
          if (j > 0 && text[j - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      const std::string close = ")" + delim + "\"";
      const size_t end = text.find(close, j);
      const int at = line;
      size_t stop = end == std::string::npos ? n : end + close.size();
      for (size_t k = i; k < stop; ++k) advance_line(text[k]);
      out.tokens.push_back({TokKind::kString, "\"<raw>\"", at});
      i = stop;
      continue;
    }
    // String / char literal (prefixes like u8, L handled by the ident
    // path first; a quote directly after an identifier token is rare and
    // treated as a fresh literal).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int at = line;
      size_t j = i + 1;
      std::string body;
      body += quote;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j];
          body += text[j + 1];
          advance_line(text[j + 1]);
          j += 2;
          continue;
        }
        advance_line(text[j]);
        body += text[j++];
      }
      body += quote;
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, body, at});
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Number (loose: digits plus the usual suffix/exponent characters;
    // the rules never inspect numeric values).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i;
      while (j < n && (IsIdentChar(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation, maximal munch.
    bool matched = false;
    for (const char* p : kPunct3) {
      if (i + 3 <= n && text.compare(i, 3, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPunct2) {
      if (i + 2 <= n && text.compare(i, 2, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace dsflint
