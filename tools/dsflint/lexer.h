// dsflint's C++ tokenizer.
//
// dsflint (tools/dsflint/README in docs/ANALYSIS.md) deliberately does
// not depend on libclang: the container that builds and tests this
// repository is GCC-only, and the point of the tool is a lock/status
// discipline gate that runs *everywhere the code compiles*. What the
// rules need is not a full parse — it is a faithful token stream
// (comments, string literals and preprocessor text stripped, so a
// ".RawPage(" inside a string can never fire the raw-page-io rule
// again) plus enough structure to track scopes, which analyzer.cc
// layers on top.
//
// The lexer keeps comments separately, keyed by line, because the
// project's `lint:allow(<rule>)` escape markers live in comments on or
// just above the offending line.

#ifndef DSF_TOOLS_DSFLINT_LEXER_H_
#define DSF_TOOLS_DSFLINT_LEXER_H_

#include <map>
#include <string>
#include <vector>

namespace dsflint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals
  kString,   // string literal (text includes quotes; raw strings folded)
  kChar,     // character literal
  kPunct,    // operators and punctuation, maximal munch
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
};

struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  // line -> concatenated comment text on that line (for lint:allow).
  std::map<int, std::string> comments;

  // True when a comment on `line` or within the three lines above it
  // contains `lint:allow(<rule>)` (the marker is often the second line
  // of a two-line comment).
  bool Allowed(const std::string& rule, int line) const;
};

// Tokenizes `text` (the contents of `path`). Never fails: bytes that fit
// no token class are skipped. Preprocessor directives are dropped
// (including line continuations); block and line comments are recorded
// in `comments` and otherwise dropped.
SourceFile Lex(const std::string& path, const std::string& text);

}  // namespace dsflint

#endif  // DSF_TOOLS_DSFLINT_LEXER_H_
