// Typed findings, modeled on the runtime auditor's AuditReport
// (src/analysis/auditor.h): every rule failure carries its kind, exact
// location and a human-readable explanation, and a LintReport aggregates
// them so callers (main.cc, tests/dsflint_test.cc) assert on structure,
// not on output text.

#ifndef DSF_TOOLS_DSFLINT_REPORT_H_
#define DSF_TOOLS_DSFLINT_REPORT_H_

#include <string>
#include <vector>

namespace dsflint {

enum class RuleKind {
  // A DSF_GUARDED_BY field touched without its mutex held (lexically).
  kGuardedByViolation,
  // A lock acquisition edge that contradicts the declared hierarchy
  // file, or a lock class missing from it.
  kLockOrderViolation,
  // A cycle in the statically extracted acquisition graph.
  kLockCycle,
  // A [[nodiscard]] Status/StatusOr returning call used as a bare
  // expression statement.
  kDiscardedStatus,
  // FindOrCreate{Counter,Gauge,Histogram} passed a raw string literal
  // outside the metrics module, or a kMetric* identifier that is not
  // declared in the metric_names.h catalog.
  kUnknownMetricName,
  // A catalog constant in metric_names.h never referenced anywhere else.
  kStaleMetricConstant,
  // A SpanKind enumerator missing from a SpanKindToString exporter body.
  kUnhandledSpanKind,
  // PageFile::RawPage called outside the storage layer.
  kRawPageIo,
  // A raw I/O syscall (open/pread/pwrite/fsync/...) outside the durable
  // storage backend.
  kRawSyscallIo,
  // DSF_CHECK / DSF_DCHECK over a Status .ok() in fault-reachable code.
  kCheckOnFaultPath,
  // Raw std:: mutex/lock types where dsf::Mutex is required.
  kNakedMutex,
};

// The lint:allow(...) rule name (and --rules= selector) for each kind.
const char* RuleKindName(RuleKind kind);

struct Finding {
  RuleKind kind = RuleKind::kGuardedByViolation;
  std::string file;
  int line = 0;
  std::string message;

  // "file:line: [rule] message"
  std::string ToString() const;
};

struct LintReport {
  std::vector<Finding> findings;
  int files_scanned = 0;

  bool ok() const { return findings.empty(); }
  std::string ToString() const;
};

}  // namespace dsflint

#endif  // DSF_TOOLS_DSFLINT_REPORT_H_
