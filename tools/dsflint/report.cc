#include "report.h"

namespace dsflint {

const char* RuleKindName(RuleKind kind) {
  switch (kind) {
    case RuleKind::kGuardedByViolation:
      return "guarded-by";
    case RuleKind::kLockOrderViolation:
    case RuleKind::kLockCycle:
      return "lock-order";
    case RuleKind::kUnknownMetricName:
    case RuleKind::kStaleMetricConstant:
      return "metric-catalog";
    case RuleKind::kUnhandledSpanKind:
      return "spankind-catalog";
    case RuleKind::kDiscardedStatus:
      return "discarded-status";
    case RuleKind::kRawPageIo:
      return "raw-page-io";
    case RuleKind::kRawSyscallIo:
      return "raw-syscall-io";
    case RuleKind::kCheckOnFaultPath:
      return "check-on-fault-path";
    case RuleKind::kNakedMutex:
      return "no-naked-mutex";
  }
  return "unknown";
}

std::string Finding::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + RuleKindName(kind) +
         "] " + message;
}

std::string LintReport::ToString() const {
  std::string out;
  for (const Finding& f : findings) out += f.ToString() + "\n";
  out += "dsflint: " + std::to_string(files_scanned) + " file(s), " +
         std::to_string(findings.size()) + " finding(s)\n";
  return out;
}

}  // namespace dsflint
