#include "analyzer.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace dsflint {

namespace {

// ---------------------------------------------------------------------
// Database built in pass 1.

struct MethodAnnotations {
  std::set<std::string> requires_locks;  // DSF_REQUIRES arguments
  bool exempt = false;                   // DSF_NO_THREAD_SAFETY_ANALYSIS
};

struct ClassInfo {
  std::string name;  // qualified by enclosing classes: "Outer::Inner"
  std::map<std::string, std::string> guarded;  // field -> guard expr
  std::set<std::string> mutex_members;  // names of Mutex/SharedMutex fields
  std::map<std::string, MethodAnnotations> methods;
};

struct Site {
  int file = -1;
  int line = 0;
};

// One function/method body queued for pass 2. The owning class is
// resolved lazily in pass 2 (the declaring header may sort after the
// .cc file in the scan order).
struct BodyJob {
  int file = -1;
  size_t body_open = 0;     // token index of the '{'
  size_t params_open = 0;   // token index of the parameter-list '('
  std::string qualifier;    // "Outer::Inner" prefix of an out-of-line def
  std::string lexical_class;  // enclosing class scope at the definition
  std::string fn_name;      // bare name ("Get", "~Foo", "operator", ...)
  MethodAnnotations annotations;
  int line = 0;
};

struct FnSummary {
  std::string bare_name;
  std::set<std::string> direct_locks;  // resolved lock classes
  std::set<std::string> callees;       // bare callee names
  std::set<std::string> all_locks;     // after fixed-point propagation
};

struct LockEdge {
  std::string from;
  std::string to;
  Site site;
  std::string via;  // "" for direct nesting, else the callee name
};

// A call made while at least one resolved lock class was held.
struct CallSite {
  std::string callee;
  std::vector<std::string> held;
  Site site;
};

struct Db {
  std::map<std::string, ClassInfo> classes;  // by qualified name
  // mutex member name -> class names declaring it.
  std::map<std::string, std::vector<std::string>> mutex_owners;
  // guarded field name -> (class name, guard expr) declaring it.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      guarded_fields;
  std::set<std::string> status_fns;  // names returning Status/StatusOr
  // Names also declared with a non-Status return somewhere: ambiguous by
  // bare name, so the discarded-status rule skips them.
  std::set<std::string> nonstatus_fns;

  // Metric catalog: declared constants and out-of-catalog uses.
  bool has_catalog = false;
  std::map<std::string, Site> metric_constants;
  std::set<std::string> metric_constants_used;
  std::vector<std::pair<std::string, Site>> metric_uses;

  // SpanKind enum and the exporter bodies that must cover it.
  std::vector<std::string> spankind_enumerators;
  struct Exporter {
    Site site;
    std::set<std::string> idents;
  };
  std::vector<Exporter> spankind_exporters;

  std::vector<BodyJob> bodies;
  std::map<std::string, FnSummary> fns;  // key: Class::name or name
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  std::vector<CallSite> call_sites;
};

const std::set<std::string>& AnnotationMacros() {
  static const std::set<std::string>* macros = new std::set<std::string>{
      "DSF_GUARDED_BY", "DSF_PT_GUARDED_BY", "DSF_REQUIRES", "DSF_EXCLUDES",
      "DSF_ACQUIRE", "DSF_RELEASE", "DSF_TRY_ACQUIRE", "DSF_ACQUIRE_SHARED",
      "DSF_RELEASE_SHARED", "DSF_TRY_ACQUIRE_SHARED", "DSF_CAPABILITY",
      "DSF_SCOPED_CAPABILITY", "DSF_RETURN_CAPABILITY",
      "DSF_NO_THREAD_SAFETY_ANALYSIS", "DSF_THREAD_ANNOTATION"};
  return *macros;
}

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kw = new std::set<std::string>{
      "if", "for", "while", "switch", "return", "sizeof", "alignof",
      "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
      "case", "new", "delete", "catch", "throw", "decltype", "noexcept",
      "static_assert", "alignas", "co_await", "co_return", "assert"};
  return *kw;
}

const std::set<std::string>& NakedMutexTypes() {
  static const std::set<std::string>* types = new std::set<std::string>{
      "mutex", "shared_mutex", "shared_timed_mutex", "recursive_mutex",
      "timed_mutex", "lock_guard", "scoped_lock", "unique_lock",
      "shared_lock"};
  return *types;
}

// The file-I/O syscall surface the raw-syscall-io rule confines to the
// storage backend. Deliberately NOT read/write/lseek: those names are
// too common as method identifiers, and the backend only ever uses the
// positioned forms anyway.
const std::set<std::string>& RawIoSyscalls() {
  static const std::set<std::string>* calls = new std::set<std::string>{
      "open",  "openat", "pread",     "pwrite",    "preadv", "pwritev",
      "fsync", "fdatasync", "ftruncate", "posix_fallocate"};
  return *calls;
}

bool PathContainsAny(const std::string& path,
                     const std::vector<std::string>& needles) {
  for (const std::string& d : needles) {
    if (path.find(d) != std::string::npos) return true;
  }
  return false;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------
// The analysis engine. One instance per Run().

class Engine {
 public:
  Engine(const AnalyzerOptions& options, const std::vector<SourceFile>& files)
      : options_(options), files_(files) {}

  LintReport Run();
  const std::string& lock_graph_dump() const { return lock_graph_dump_; }

 private:
  static bool Is(const Token& t, const char* s) { return t.text == s; }
  static bool IsIdent(const Token& t) { return t.kind == TokKind::kIdent; }

  // Index of the token after the matching closer for the opener at `i`.
  static size_t SkipBalanced(const std::vector<Token>& t, size_t i,
                             const char* open, const char* close) {
    int depth = 0;
    for (; i < t.size(); ++i) {
      if (t[i].text == open) ++depth;
      if (t[i].text == close && --depth == 0) return i + 1;
    }
    return t.size();
  }

  bool RuleEnabled(const char* name) const {
    return options_.rules.empty() || options_.rules.count(name) != 0;
  }
  bool Strict(const SourceFile& f) const {
    return PathContainsAny(f.path, options_.strict_dirs);
  }
  bool Allowed(const SourceFile& f, RuleKind kind, int line) const {
    if (f.Allowed(RuleKindName(kind), line)) return true;
    // Legacy escape spelling from the grep-linter era.
    return kind == RuleKind::kUnknownMetricName &&
           f.Allowed("unregistered-metric-name", line);
  }
  void Add(RuleKind kind, const SourceFile& f, int line, std::string msg) {
    if (Allowed(f, kind, line)) return;
    report_.findings.push_back({kind, f.path, line, std::move(msg)});
  }

  void ScanFile(int file_index);
  size_t ParseDeclaration(int file_index, size_t i, size_t end,
                          const std::string& class_path);
  ClassInfo& GetClass(const std::string& name) {
    ClassInfo& c = db_.classes[name];
    c.name = name;
    return c;
  }
  std::string ResolveClassPath(const std::string& qualifier) const;

  void AnalyzeBody(const BodyJob& job);
  std::string WalkChain(const std::vector<Token>& t, size_t last,
                        size_t* chain_start) const;
  std::string ResolveLockClass(
      const std::string& expr, const std::string& class_path,
      const std::map<std::string, std::string>& aliases) const;
  void RecordEdge(const std::string& from, const std::string& to, Site site,
                  const std::string& via);

  void TokenRules(int file_index);
  void CatalogRules();
  void LockGraphRules();

  const AnalyzerOptions& options_;
  const std::vector<SourceFile>& files_;
  Db db_;
  LintReport report_;
  std::string lock_graph_dump_;
};

// ---------------------------------------------------------------------
// Pass 1 — declaration scanning.

void Engine::ScanFile(int file_index) {
  const SourceFile& f = files_[static_cast<size_t>(file_index)];
  const std::vector<Token>& t = f.tokens;

  struct Scope {
    std::string class_path;  // "" for namespaces / plain braces
    bool is_class = false;
  };
  std::vector<Scope> scopes;
  auto current_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->is_class) return it->class_path;
    }
    return "";
  };

  size_t i = 0;
  while (i < t.size()) {
    const Token& tok = t[i];
    if (Is(tok, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      ++i;
      continue;
    }
    if (Is(tok, "{")) {  // stray block (extern "C", ...)
      scopes.push_back({"", false});
      ++i;
      continue;
    }
    if (Is(tok, "template")) {
      // Skip the <...> parameter list; no expression '<' appears inside
      // template headers in this codebase.
      size_t j = i + 1;
      if (j < t.size() && Is(t[j], "<")) {
        int depth = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "<") {
            ++depth;
          } else if (t[j].text == ">") {
            if (--depth == 0) {
              ++j;
              break;
            }
          } else if (t[j].text == ">>") {
            depth -= 2;
            if (depth <= 0) {
              ++j;
              break;
            }
          }
        }
      }
      i = j;
      continue;
    }
    if (Is(tok, "namespace")) {
      size_t j = i + 1;
      while (j < t.size() && !Is(t[j], "{") && !Is(t[j], ";")) ++j;
      if (j < t.size() && Is(t[j], "{")) scopes.push_back({"", false});
      i = j + 1;
      continue;
    }
    if ((Is(tok, "class") || Is(tok, "struct")) &&
        (i == 0 || (!Is(t[i - 1], "<") && !Is(t[i - 1], ",") &&
                    !Is(t[i - 1], "typename") && !Is(t[i - 1], "enum")))) {
      // Class name = last plain identifier before '{', ':' or ';',
      // skipping attributes and annotation macros.
      std::string name;
      size_t j = i + 1;
      for (; j < t.size(); ++j) {
        if (Is(t[j], "(")) {
          j = SkipBalanced(t, j, "(", ")") - 1;
          continue;
        }
        if (Is(t[j], "[")) {
          j = SkipBalanced(t, j, "[", "]") - 1;
          continue;
        }
        if (Is(t[j], "{") || Is(t[j], ":") || Is(t[j], ";")) break;
        if (IsIdent(t[j]) && AnnotationMacros().count(t[j].text) == 0 &&
            t[j].text != "final" && t[j].text != "alignas") {
          name = t[j].text;
        }
      }
      while (j < t.size() && !Is(t[j], "{") && !Is(t[j], ";")) ++j;
      if (j < t.size() && Is(t[j], "{") && !name.empty()) {
        const std::string outer = current_class();
        const std::string path = outer.empty() ? name : outer + "::" + name;
        GetClass(path);
        scopes.push_back({path, true});
        i = j + 1;
        continue;
      }
      i = j + 1;  // forward declaration or anonymous
      continue;
    }
    if (Is(tok, "enum")) {
      size_t j = i + 1;
      std::string name;
      while (j < t.size() && !Is(t[j], "{") && !Is(t[j], ";") &&
             !Is(t[j], ":")) {
        if (IsIdent(t[j]) && t[j].text != "class" && t[j].text != "struct") {
          name = t[j].text;
        }
        ++j;
      }
      while (j < t.size() && !Is(t[j], "{") && !Is(t[j], ";")) ++j;
      if (j < t.size() && Is(t[j], "{")) {
        const size_t close = SkipBalanced(t, j, "{", "}");
        if (name == "SpanKind") {
          for (size_t k = j + 1; k + 1 < close; ++k) {
            if (IsIdent(t[k]) && (Is(t[k + 1], ",") || Is(t[k + 1], "}") ||
                                  Is(t[k + 1], "="))) {
              db_.spankind_enumerators.push_back(t[k].text);
            }
          }
        }
        i = close;
        continue;
      }
      i = j + 1;
      continue;
    }
    if (Is(tok, "using") || Is(tok, "typedef") || Is(tok, "friend") ||
        Is(tok, "extern")) {
      while (i < t.size() && !Is(t[i], ";") && !Is(t[i], "{")) ++i;
      if (i < t.size() && Is(t[i], ";")) ++i;
      continue;
    }
    if (Is(tok, ";") || Is(tok, "public") || Is(tok, "private") ||
        Is(tok, "protected") || Is(tok, ":") || tok.kind == TokKind::kString ||
        tok.kind == TokKind::kNumber) {
      ++i;
      continue;
    }
    i = ParseDeclaration(file_index, i, t.size(), current_class());
  }
}

size_t Engine::ParseDeclaration(int file_index, size_t i, size_t end,
                                const std::string& class_path) {
  const std::vector<Token>& t =
      files_[static_cast<size_t>(file_index)].tokens;
  const size_t decl_start = i;

  MethodAnnotations ann;
  std::string guarded_field, guard_expr;
  std::string fn_name, fn_qualifier;
  bool have_params = false;
  size_t params_open = 0;
  bool saw_mutex_type = false;
  std::string last_ident;
  int fn_line = t[i].line;

  auto join = [&](size_t a, size_t b) {  // tokens [a, b) joined
    std::string out;
    for (size_t k = a; k < b; ++k) {
      out += t[k].text == "->" ? "." : t[k].text;
    }
    return out;
  };
  auto note_status_return = [&](size_t name_limit) {
    // Return type = tokens before the (possibly qualified) name.
    bool is_status = false;
    for (size_t k = decl_start; k < name_limit; ++k) {
      if (t[k].text == fn_name &&
          (k + 1 >= name_limit || !Is(t[k + 1], "::"))) {
        break;
      }
      if (Is(t[k], "Status") || Is(t[k], "StatusOr")) {
        is_status = true;
        break;
      }
    }
    if (is_status) {
      db_.status_fns.insert(fn_name);
    } else {
      db_.nonstatus_fns.insert(fn_name);
    }
  };

  size_t j = i;
  while (j < end) {
    const Token& tok = t[j];
    if (Is(tok, ";")) {
      if (!class_path.empty() && !guarded_field.empty()) {
        GetClass(class_path).guarded[guarded_field] = guard_expr;
        db_.guarded_fields[guarded_field].push_back({class_path, guard_expr});
      } else if (!class_path.empty() && saw_mutex_type && !have_params &&
                 !last_ident.empty() && last_ident != "Mutex" &&
                 last_ident != "SharedMutex") {
        GetClass(class_path).mutex_members.insert(last_ident);
        db_.mutex_owners[last_ident].push_back(class_path);
      }
      if (have_params && !fn_name.empty()) {
        if (!ann.requires_locks.empty() || ann.exempt) {
          const std::string cls = !fn_qualifier.empty()
                                      ? ResolveClassPath(fn_qualifier)
                                      : class_path;
          if (!cls.empty()) {
            MethodAnnotations& m = GetClass(cls).methods[fn_name];
            m.exempt = m.exempt || ann.exempt;
            m.requires_locks.insert(ann.requires_locks.begin(),
                                    ann.requires_locks.end());
          }
        }
        note_status_return(j);
      }
      return j + 1;
    }
    if (IsIdent(tok)) {
      if (tok.text == "Mutex" || tok.text == "SharedMutex") {
        saw_mutex_type = true;
        last_ident = tok.text;
      } else if (tok.text == "DSF_GUARDED_BY" ||
                 tok.text == "DSF_PT_GUARDED_BY") {
        if (j + 1 < end && Is(t[j + 1], "(")) {
          guarded_field = last_ident;
          const size_t close = SkipBalanced(t, j + 1, "(", ")");
          guard_expr = join(j + 2, close - 1);
          j = close;
          continue;
        }
      } else if (tok.text == "DSF_REQUIRES") {
        if (j + 1 < end && Is(t[j + 1], "(")) {
          const size_t close = SkipBalanced(t, j + 1, "(", ")");
          ann.requires_locks.insert(join(j + 2, close - 1));
          j = close;
          continue;
        }
      } else if (tok.text == "DSF_NO_THREAD_SAFETY_ANALYSIS") {
        ann.exempt = true;
      } else if (AnnotationMacros().count(tok.text) != 0) {
        if (j + 1 < end && Is(t[j + 1], "(")) {
          j = SkipBalanced(t, j + 1, "(", ")");
          continue;
        }
      } else {
        last_ident = tok.text;
      }
      ++j;
      continue;
    }
    if (Is(tok, "(")) {
      const bool prev_is_name = j > decl_start && IsIdent(t[j - 1]) &&
                                AnnotationMacros().count(t[j - 1].text) == 0;
      if (!have_params && prev_is_name) {
        fn_name = t[j - 1].text;
        fn_line = t[j - 1].line;
        size_t q = j - 1;
        if (q > decl_start && Is(t[q - 1], "~")) {
          fn_name = "~" + fn_name;
          --q;
        }
        std::vector<std::string> quals;
        while (q >= decl_start + 2 && Is(t[q - 1], "::") &&
               IsIdent(t[q - 2])) {
          quals.insert(quals.begin(), t[q - 2].text);
          q -= 2;
        }
        for (size_t k = 0; k < quals.size(); ++k) {
          fn_qualifier += (k ? "::" : "") + quals[k];
        }
        have_params = true;
        params_open = j;
      }
      j = SkipBalanced(t, j, "(", ")");
      continue;
    }
    if (Is(tok, "[")) {
      j = SkipBalanced(t, j, "[", "]");
      continue;
    }
    if (Is(tok, "=")) {
      // Initializer, `= default`, `= delete`, `= 0`: consume to ';'.
      ++j;
      while (j < end && !Is(t[j], ";")) {
        if (Is(t[j], "(")) {
          j = SkipBalanced(t, j, "(", ")");
        } else if (Is(t[j], "{")) {
          j = SkipBalanced(t, j, "{", "}");
        } else if (Is(t[j], "[")) {
          j = SkipBalanced(t, j, "[", "]");
        } else {
          ++j;
        }
      }
      continue;
    }
    if (Is(tok, ":") && have_params) {
      // Constructor initializer list: `name (...)` / `name {...}` groups,
      // then the body '{'.
      ++j;
      while (j < end) {
        if (Is(t[j], "{")) break;  // the body
        if (Is(t[j], "(")) {
          j = SkipBalanced(t, j, "(", ")");
          continue;
        }
        if (IsIdent(t[j]) && j + 1 < end && Is(t[j + 1], "{")) {
          j = SkipBalanced(t, j + 1, "{", "}");
          continue;
        }
        ++j;
      }
      continue;
    }
    if (Is(tok, "{")) {
      if (!have_params || fn_name.empty()) {
        // Either a field's brace initializer, or the body of a function
        // whose name we could not extract (operator overloads): the
        // latter ends the declaration and is recognizable by the token
        // right before the brace.
        if (j > decl_start &&
            (Is(t[j - 1], ")") || Is(t[j - 1], "const") ||
             Is(t[j - 1], "noexcept") || Is(t[j - 1], "override"))) {
          return SkipBalanced(t, j, "{", "}");
        }
        j = SkipBalanced(t, j, "{", "}");
        continue;
      }
      // A function definition: queue the body for pass 2.
      note_status_return(j);
      BodyJob job;
      job.file = file_index;
      job.body_open = j;
      job.params_open = params_open;
      job.qualifier = fn_qualifier;
      job.lexical_class = class_path;
      job.fn_name = fn_name;
      job.line = fn_line;
      job.annotations = ann;
      db_.bodies.push_back(job);
      return SkipBalanced(t, j, "{", "}");
    }
    ++j;
  }
  return end;
}

std::string Engine::ResolveClassPath(const std::string& qualifier) const {
  if (db_.classes.count(qualifier) != 0) return qualifier;
  for (const auto& [name, info] : db_.classes) {
    (void)info;
    if (name.size() > qualifier.size() + 2 &&
        name.compare(name.size() - qualifier.size() - 2, 2, "::") == 0 &&
        name.compare(name.size() - qualifier.size(), qualifier.size(),
                     qualifier) == 0) {
      return name;
    }
  }
  return "";
}

// ---------------------------------------------------------------------
// Pass 2 — body analysis.

std::string Engine::WalkChain(const std::vector<Token>& t, size_t last,
                              size_t* chain_start) const {
  if (last >= t.size() || (!IsIdent(t[last]) && t[last].text != "this")) {
    return "";
  }
  std::vector<std::string> parts = {t[last].text};
  size_t j = last;
  while (j >= 2 && (Is(t[j - 1], ".") || Is(t[j - 1], "->")) &&
         (IsIdent(t[j - 2]) || Is(t[j - 2], "this"))) {
    parts.insert(parts.begin(), t[j - 2].text);
    j -= 2;
  }
  // A complex base (call/index result) makes the chain unresolvable.
  if (j >= 1 && (Is(t[j - 1], ")") || Is(t[j - 1], "]"))) return "";
  *chain_start = j;
  std::string out;
  for (size_t k = 0; k < parts.size(); ++k) out += (k ? "." : "") + parts[k];
  return out;
}

std::string Engine::ResolveLockClass(
    const std::string& expr, const std::string& class_path,
    const std::map<std::string, std::string>& aliases) const {
  const size_t dot = expr.rfind('.');
  if (dot == std::string::npos) {
    auto alias = aliases.find(expr);
    if (alias != aliases.end()) return alias->second;
    // The innermost enclosing class declaring such a mutex member wins.
    std::string cls = class_path;
    while (!cls.empty()) {
      auto it = db_.classes.find(cls);
      if (it != db_.classes.end() &&
          it->second.mutex_members.count(expr) != 0) {
        return cls + "::" + expr;
      }
      const size_t sep = cls.rfind("::");
      cls = sep == std::string::npos ? "" : cls.substr(0, sep);
    }
    auto owners = db_.mutex_owners.find(expr);
    if (owners != db_.mutex_owners.end() && owners->second.size() == 1) {
      return owners->second[0] + "::" + expr;
    }
    return "";
  }
  const std::string member = expr.substr(dot + 1);
  const std::string base = expr.substr(0, dot);
  if (base == "this") return ResolveLockClass(member, class_path, aliases);
  auto owners = db_.mutex_owners.find(member);
  if (owners != db_.mutex_owners.end() && owners->second.size() == 1) {
    return owners->second[0] + "::" + member;
  }
  return "";
}

void Engine::RecordEdge(const std::string& from, const std::string& to,
                        Site site, const std::string& via) {
  const auto key = std::make_pair(from, to);
  if (db_.edges.count(key) != 0) return;
  db_.edges[key] = {from, to, site, via};
}

void Engine::AnalyzeBody(const BodyJob& job) {
  const SourceFile& f = files_[static_cast<size_t>(job.file)];
  const std::vector<Token>& t = f.tokens;

  // Resolve the owning class now that the whole DB exists.
  const std::string class_name = !job.qualifier.empty()
                                     ? ResolveClassPath(job.qualifier)
                                     : job.lexical_class;
  const std::string tail = class_name.find("::") != std::string::npos
                               ? class_name.substr(class_name.rfind("::") + 2)
                               : class_name;
  const bool ctor_dtor = !class_name.empty() &&
                         (job.fn_name == tail || job.fn_name == "~" + tail);

  const std::string fn_key =
      class_name.empty() ? job.fn_name : class_name + "::" + job.fn_name;
  FnSummary& summary = db_.fns[fn_key];
  summary.bare_name = job.fn_name;

  // Effective annotations: definition side plus any header declaration.
  MethodAnnotations ann = job.annotations;
  if (!class_name.empty()) {
    auto cls = db_.classes.find(class_name);
    if (cls != db_.classes.end()) {
      auto m = cls->second.methods.find(job.fn_name);
      if (m != cls->second.methods.end()) {
        ann.exempt = ann.exempt || m->second.exempt;
        ann.requires_locks.insert(m->second.requires_locks.begin(),
                                  m->second.requires_locks.end());
      }
    }
  }
  const bool check_fields = Strict(f) && RuleEnabled("guarded-by") &&
                            !ann.exempt && !ctor_dtor &&
                            !class_name.empty();

  // Typed locals (parameters plus body declarations) whose class is in
  // the DB: the only bases on which `base.field` guard checks fire.
  std::map<std::string, std::string> typed_locals;  // var -> class
  auto note_typed_local = [&](size_t type_idx, size_t var_idx) {
    std::vector<std::string> parts = {t[type_idx].text};
    size_t q = type_idx;
    while (q >= 2 && Is(t[q - 1], "::") && IsIdent(t[q - 2])) {
      parts.insert(parts.begin(), t[q - 2].text);
      q -= 2;
    }
    std::string type;
    for (size_t k = 0; k < parts.size(); ++k) {
      type += (k ? "::" : "") + parts[k];
    }
    const std::string cls = ResolveClassPath(type);
    if (!cls.empty()) typed_locals[t[var_idx].text] = cls;
  };
  if (job.params_open != 0) {
    const size_t params_end =
        SkipBalanced(t, job.params_open, "(", ")") - 1;
    for (size_t k = job.params_open + 1; k + 1 < params_end; ++k) {
      if (IsIdent(t[k]) && (Is(t[k + 1], "&") || Is(t[k + 1], "*")) &&
          k + 2 < params_end && IsIdent(t[k + 2]) &&
          (k + 3 >= params_end || Is(t[k + 3], ",") ||
           Is(t[k + 3], ")") || Is(t[k + 3], "="))) {
        note_typed_local(k, k + 2);
      }
    }
  }

  struct Hold {
    std::string expr;  // normalized guard expression text
    int depth;
  };
  std::vector<Hold> held;
  for (const std::string& r : ann.requires_locks) held.push_back({r, 0});
  std::map<std::string, std::string> aliases;  // local ref -> lock class

  auto held_has = [&](const std::string& expr) {
    for (const Hold& h : held) {
      if (h.expr == expr || h.expr == "this." + expr ||
          "this." + h.expr == expr) {
        return true;
      }
    }
    return false;
  };
  auto record_acquire = [&](const std::string& expr, int line) {
    const std::string cls = ResolveLockClass(expr, class_name, aliases);
    if (cls.empty()) return;
    summary.direct_locks.insert(cls);
    for (const Hold& h : held) {
      const std::string from =
          ResolveLockClass(h.expr, class_name, aliases);
      if (!from.empty() && from != cls) {
        RecordEdge(from, cls, {job.file, line}, "");
      }
    }
  };

  int depth = 1;
  const size_t end = SkipBalanced(t, job.body_open, "{", "}") - 1;
  size_t i = job.body_open + 1;
  while (i < end) {
    const Token& tok = t[i];
    if (Is(tok, "{")) {
      ++depth;
      ++i;
      continue;
    }
    if (Is(tok, "}")) {
      --depth;
      held.erase(
          std::remove_if(held.begin(), held.end(),
                         [&](const Hold& h) { return h.depth > depth; }),
          held.end());
      ++i;
      continue;
    }
    if (!IsIdent(tok)) {
      ++i;
      continue;
    }

    // RAII guard declarations: `MutexLock lock(EXPR);` and friends.
    if ((tok.text == "MutexLock" || tok.text == "WriterMutexLock" ||
         tok.text == "ReaderMutexLock") &&
        i + 2 < end && IsIdent(t[i + 1]) && Is(t[i + 2], "(")) {
      const size_t close = SkipBalanced(t, i + 2, "(", ")");
      std::string expr;
      for (size_t k = i + 3; k + 1 < close; ++k) {
        expr += t[k].text == "->" ? "." : t[k].text;
      }
      record_acquire(expr, tok.line);
      held.push_back({expr, depth});
      i = close;
      continue;
    }
    // Local mutex references: `SharedMutex& mu = EXPR;` (MultiShardLock's
    // acquisition loop) — alias for lock-class resolution.
    if ((tok.text == "Mutex" || tok.text == "SharedMutex") && i + 3 < end &&
        Is(t[i + 1], "&") && IsIdent(t[i + 2]) && Is(t[i + 3], "=")) {
      size_t semi = i + 4;
      while (semi < end && !Is(t[semi], ";")) ++semi;
      for (size_t k = semi; k-- > i + 4;) {
        if (IsIdent(t[k])) {
          const std::string cls =
              ResolveLockClass("rhs." + t[k].text, class_name, aliases);
          if (!cls.empty()) aliases[t[i + 2].text] = cls;
          break;
        }
      }
      i = semi;
      continue;
    }
    // Manual lock operations on an access chain.
    if ((tok.text == "Lock" || tok.text == "ReaderLock" ||
         tok.text == "Unlock" || tok.text == "ReaderUnlock" ||
         tok.text == "TryLock" || tok.text == "ReaderTryLock") &&
        i >= 1 && (Is(t[i - 1], ".") || Is(t[i - 1], "->")) && i + 1 < end &&
        Is(t[i + 1], "(")) {
      size_t chain_start = 0;
      const std::string expr = WalkChain(t, i - 2, &chain_start);
      const size_t after_call = SkipBalanced(t, i + 1, "(", ")");
      if (!expr.empty()) {
        if (tok.text == "Lock" || tok.text == "ReaderLock") {
          record_acquire(expr, tok.line);
          held.push_back({expr, depth});
        } else if (tok.text == "Unlock" || tok.text == "ReaderUnlock") {
          for (size_t k = held.size(); k-- > 0;) {
            if (held[k].expr == expr) {
              held.erase(held.begin() + static_cast<long>(k));
              break;
            }
          }
        } else if (after_call < end && Is(t[after_call], ")") &&
                   after_call + 1 < end && Is(t[after_call + 1], "{")) {
          // `if (expr.TryLock()) { ... }`: the hold spans the guarded
          // block. A stored TryLock result is untracked (conservative).
          record_acquire(expr, tok.line);
          held.push_back({expr, depth + 1});
        }
      }
      i = after_call;
      continue;
    }

    // Typed local declarations: `Shard& s = ...`, `const Shard* s;`.
    if (i + 3 < end && (Is(t[i + 1], "&") || Is(t[i + 1], "*")) &&
        IsIdent(t[i + 2]) && (Is(t[i + 3], "=") || Is(t[i + 3], ";"))) {
      note_typed_local(i, i + 2);
    }

    // Call events for the lock-graph summaries.
    if (i + 1 < end && Is(t[i + 1], "(") && Keywords().count(tok.text) == 0 &&
        AnnotationMacros().count(tok.text) == 0 &&
        !StartsWith(tok.text, "DSF_")) {
      summary.callees.insert(tok.text);
      if (!held.empty()) {
        std::vector<std::string> held_classes;
        for (const Hold& h : held) {
          const std::string cls =
              ResolveLockClass(h.expr, class_name, aliases);
          if (!cls.empty()) held_classes.push_back(cls);
        }
        if (!held_classes.empty()) {
          db_.call_sites.push_back(
              {tok.text, std::move(held_classes), {job.file, tok.line}});
        }
      }
    }

    // Guarded-field access checks.
    if (check_fields) {
      const bool after_member_op =
          i >= 1 && (Is(t[i - 1], ".") || Is(t[i - 1], "->"));
      const bool after_scope = i >= 1 && Is(t[i - 1], "::");
      if (after_member_op) {
        size_t chain_start = 0;
        const std::string chain = WalkChain(t, i, &chain_start);
        if (!chain.empty()) {
          const size_t dot = chain.rfind('.');
          const std::string base = chain.substr(0, dot);
          const std::string field = chain.substr(dot + 1);
          if (base == "this") {
            auto cls = db_.classes.find(class_name);
            if (cls != db_.classes.end()) {
              auto g = cls->second.guarded.find(field);
              if (g != cls->second.guarded.end() && !held_has(g->second)) {
                Add(RuleKind::kGuardedByViolation, f, tok.line,
                    "field '" + field + "' of " + class_name +
                        " is DSF_GUARDED_BY(" + g->second +
                        ") but no hold of it is in scope in " + fn_key +
                        "()");
              }
            }
          } else if (base.find('.') == std::string::npos &&
                     typed_locals.count(base) != 0 &&
                     !(i + 1 < end && Is(t[i + 1], "("))) {
            // Only bases whose class we know from a typed local/param are
            // checked (a trailing '(' means a method call on some other
            // type, not a field read).
            auto cls = db_.classes.find(typed_locals[base]);
            if (cls != db_.classes.end()) {
              auto g = cls->second.guarded.find(field);
              if (g != cls->second.guarded.end() &&
                  !held_has(base + "." + g->second)) {
                Add(RuleKind::kGuardedByViolation, f, tok.line,
                    "field '" + base + "." + field + "' (" +
                        cls->second.name + ") is DSF_GUARDED_BY(" +
                        g->second + ") but no hold of '" + base + "." +
                        g->second + "' is in scope in " + fn_key + "()");
              }
            }
          }
        }
      } else if (!after_scope) {
        auto cls = db_.classes.find(class_name);
        if (cls != db_.classes.end()) {
          auto g = cls->second.guarded.find(tok.text);
          if (g != cls->second.guarded.end() && !held_has(g->second)) {
            Add(RuleKind::kGuardedByViolation, f, tok.line,
                "field '" + tok.text + "' of " + class_name +
                    " is DSF_GUARDED_BY(" + g->second +
                    ") but no hold of it is in scope in " + fn_key + "()");
          }
        }
      }
    }
    ++i;
  }
}

// ---------------------------------------------------------------------
// Pass 3 — token-local rules (single linear scan per file).

void Engine::TokenRules(int file_index) {
  const SourceFile& f = files_[static_cast<size_t>(file_index)];
  const std::vector<Token>& t = f.tokens;
  const bool strict = Strict(f);
  const bool is_catalog =
      Basename(f.path) == options_.metric_catalog_basename;
  if (is_catalog) db_.has_catalog = true;

  for (size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (!IsIdent(tok)) continue;

    // raw-page-io: `.RawPage(` outside the storage layer.
    if (strict && RuleEnabled("raw-page-io") && tok.text == "RawPage" &&
        i >= 1 && (Is(t[i - 1], ".") || Is(t[i - 1], "->")) &&
        i + 1 < t.size() && Is(t[i + 1], "(") &&
        !PathContainsAny(f.path, options_.raw_page_dirs)) {
      Add(RuleKind::kRawPageIo, f, tok.line,
          "raw page access outside the storage layer; go through the "
          "PageFile read/write API");
    }

    // raw-syscall-io: a file-I/O syscall called as a free function
    // outside the durable backend. Member calls (`stream.open(`) are not
    // syscalls, and neither are declarations (`int open(...)`) — both
    // have a telltale preceding token (./-> or a type identifier); only
    // `return` may legitimately precede a flagged call as an identifier.
    if (strict && RuleEnabled("raw-syscall-io") &&
        RawIoSyscalls().count(tok.text) != 0 && i + 1 < t.size() &&
        Is(t[i + 1], "(") &&
        (i == 0 || (!Is(t[i - 1], ".") && !Is(t[i - 1], "->") &&
                    !(IsIdent(t[i - 1]) && t[i - 1].text != "return"))) &&
        !PathContainsAny(f.path, options_.raw_syscall_dirs)) {
      Add(RuleKind::kRawSyscallIo, f, tok.line,
          "raw " + tok.text +
              "() outside src/storage/; durable I/O must go through "
              "StorageBackend so fault injection and write accounting "
              "cannot be bypassed");
    }

    // check-on-fault-path: DSF_CHECK(...ok()...) in fault-reachable code.
    if (RuleEnabled("check-on-fault-path") &&
        (tok.text == "DSF_CHECK" || tok.text == "DSF_DCHECK") &&
        i + 1 < t.size() && Is(t[i + 1], "(") &&
        PathContainsAny(f.path, options_.fault_dirs)) {
      const size_t close = SkipBalanced(t, i + 1, "(", ")");
      for (size_t k = i + 2; k + 2 < close; ++k) {
        if ((Is(t[k], ".") || Is(t[k], "->")) && Is(t[k + 1], "ok") &&
            Is(t[k + 2], "(")) {
          Add(RuleKind::kCheckOnFaultPath, f, tok.line,
              tok.text + " over a Status in fault-reachable code; "
                         "propagate the error instead of crashing");
          break;
        }
      }
    }

    // no-naked-mutex: std:: synchronization primitives outside the
    // annotated wrapper layer.
    if (strict && RuleEnabled("no-naked-mutex") && tok.text == "std" &&
        i + 2 < t.size() && Is(t[i + 1], "::") && IsIdent(t[i + 2]) &&
        NakedMutexTypes().count(t[i + 2].text) != 0 &&
        !PathContainsAny(f.path, options_.naked_mutex_exempt_dirs)) {
      Add(RuleKind::kNakedMutex, f, tok.line,
          "std::" + t[i + 2].text +
              " bypasses the annotated dsf::Mutex wrappers (and the "
              "deadlock detector)");
    }

    // metric-catalog: raw literals at registration sites...
    if (RuleEnabled("metric-catalog") &&
        (tok.text == "FindOrCreateCounter" ||
         tok.text == "FindOrCreateGauge" ||
         tok.text == "FindOrCreateHistogram") &&
        i + 2 < t.size() && Is(t[i + 1], "(") &&
        t[i + 2].kind == TokKind::kString &&
        !PathContainsAny(f.path, options_.metric_free_dirs)) {
      Add(RuleKind::kUnknownMetricName, f, t[i + 2].line,
          tok.text + " passed a raw string literal; use a k* constant "
                     "from " +
              options_.metric_catalog_basename);
    }
    // ...catalog declarations and kMetric* uses.
    if (StartsWith(tok.text, "kMetric")) {
      if (is_catalog && i + 1 < t.size() && Is(t[i + 1], "[")) {
        db_.metric_constants[tok.text] = {file_index, tok.line};
      } else if (!is_catalog) {
        db_.metric_uses.push_back({tok.text, {file_index, tok.line}});
      }
    }

    // spankind-catalog: exporter bodies must cover every enumerator.
    if (RuleEnabled("spankind-catalog") && tok.text == "SpanKindToString" &&
        i + 1 < t.size() && Is(t[i + 1], "(")) {
      const size_t close = SkipBalanced(t, i + 1, "(", ")");
      if (close < t.size() && Is(t[close], "{")) {
        Db::Exporter exp;
        exp.site = {file_index, tok.line};
        const size_t body_end = SkipBalanced(t, close, "{", "}");
        for (size_t k = close + 1; k + 1 < body_end; ++k) {
          if (IsIdent(t[k])) exp.idents.insert(t[k].text);
        }
        db_.spankind_exporters.push_back(std::move(exp));
      }
    }

    // discarded-status: a Status/StatusOr call as a bare expression
    // statement.
    if (strict && RuleEnabled("discarded-status") &&
        db_.status_fns.count(tok.text) != 0 &&
        db_.nonstatus_fns.count(tok.text) == 0 && i + 1 < t.size() &&
        Is(t[i + 1], "(")) {
      const size_t after = SkipBalanced(t, i + 1, "(", ")");
      if (after < t.size() && Is(t[after], ";")) {
        // Find the start of the full call expression (receiver chain or
        // qualifier), then classify the token before it.
        size_t start = i;
        if (i >= 2 && (Is(t[i - 1], ".") || Is(t[i - 1], "->"))) {
          size_t chain_start = 0;
          if (WalkChain(t, i, &chain_start).empty()) continue;
          start = chain_start;
        } else {
          while (start >= 2 && Is(t[start - 1], "::") &&
                 IsIdent(t[start - 2])) {
            start -= 2;
          }
        }
        // NB: ':' is NOT a boundary — it would misread the else-branch
        // of a ternary whose value is being assigned.
        static const std::set<std::string>* stmt_ends =
            new std::set<std::string>{";", "{", "}", ")", "else", "do"};
        if (start == 0 || stmt_ends->count(t[start - 1].text) != 0) {
          Add(RuleKind::kDiscardedStatus, f, tok.line,
              "result of " + tok.text +
                  "() (Status/StatusOr) is discarded; handle it, "
                  "DSF_RETURN_IF_ERROR it, or pass it to IgnoreStatus()");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Pass 4 — cross-file rules.

void Engine::CatalogRules() {
  if (RuleEnabled("metric-catalog") && db_.has_catalog) {
    for (const auto& [name, site] : db_.metric_uses) {
      if (db_.metric_constants.count(name) != 0) {
        db_.metric_constants_used.insert(name);
      } else {
        Add(RuleKind::kUnknownMetricName,
            files_[static_cast<size_t>(site.file)], site.line,
            "'" + name + "' is not declared in " +
                options_.metric_catalog_basename +
                "; the metric catalog is closed");
      }
    }
    // Stale constants only make sense on a whole-tree scan.
    if (files_.size() > 1) {
      for (const auto& [name, site] : db_.metric_constants) {
        if (db_.metric_constants_used.count(name) == 0) {
          Add(RuleKind::kStaleMetricConstant,
              files_[static_cast<size_t>(site.file)], site.line,
              "catalog constant '" + name +
                  "' is never referenced outside the catalog");
        }
      }
    }
  }

  if (RuleEnabled("spankind-catalog") && !db_.spankind_enumerators.empty()) {
    for (const Db::Exporter& exp : db_.spankind_exporters) {
      const SourceFile& f = files_[static_cast<size_t>(exp.site.file)];
      if (!Strict(f)) continue;
      for (const std::string& e : db_.spankind_enumerators) {
        if (exp.idents.count(e) == 0) {
          Add(RuleKind::kUnhandledSpanKind, f, exp.site.line,
              "SpanKind::" + e + " is not handled in this "
                                 "SpanKindToString exporter");
        }
      }
    }
  }
}

void Engine::LockGraphRules() {
  // Fixed-point propagation of acquired-lock sets through bare-name call
  // summaries (only names with a body in the scan set resolve).
  std::map<std::string, std::vector<FnSummary*>> by_name;
  for (auto& [key, fn] : db_.fns) {
    (void)key;
    fn.all_locks = fn.direct_locks;
    by_name[fn.bare_name].push_back(&fn);
  }
  bool changed = true;
  int rounds = 0;
  while (changed && ++rounds < 32) {
    changed = false;
    for (auto& [key, fn] : db_.fns) {
      (void)key;
      for (const std::string& callee : fn.callees) {
        auto it = by_name.find(callee);
        if (it == by_name.end()) continue;
        for (const FnSummary* target : it->second) {
          for (const std::string& lock : target->all_locks) {
            if (fn.all_locks.insert(lock).second) changed = true;
          }
        }
      }
    }
  }

  // Call-mediated edges: held locks -> anything the callee may acquire.
  for (const CallSite& cs : db_.call_sites) {
    auto it = by_name.find(cs.callee);
    if (it == by_name.end()) continue;
    std::set<std::string> acquired;
    for (const FnSummary* target : it->second) {
      acquired.insert(target->all_locks.begin(), target->all_locks.end());
    }
    for (const std::string& from : cs.held) {
      for (const std::string& to : acquired) {
        if (from != to) RecordEdge(from, to, cs.site, cs.callee);
      }
    }
  }

  // Graph dump (deterministic: the edge map is keyed on (from, to)).
  std::ostringstream dump;
  for (const auto& [key, e] : db_.edges) {
    (void)key;
    dump << e.from << " -> " << e.to;
    if (!e.via.empty()) dump << "  [via call " << e.via << "()]";
    dump << "  (" << files_[static_cast<size_t>(e.site.file)].path << ":"
         << e.site.line << ")\n";
  }
  lock_graph_dump_ = dump.str();

  if (!RuleEnabled("lock-order")) return;

  // Cycle detection over the extracted graph (DFS, white/grey/black).
  std::map<std::string, std::vector<const LockEdge*>> adj;
  std::set<std::string> nodes;
  for (const auto& [key, e] : db_.edges) {
    (void)key;
    adj[e.from].push_back(&e);
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported_cycles;
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    for (const LockEdge* e : adj[node]) {
      if (color[e->to] == 1) {
        // Cycle: the stack suffix from e->to, closed by this back edge.
        auto at = std::find(stack.begin(), stack.end(), e->to);
        std::vector<std::string> cycle(at, stack.end());
        auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::string canon;
        for (size_t k = 0; k < cycle.size(); ++k) {
          canon += cycle[(static_cast<size_t>(min_it - cycle.begin()) + k) %
                         cycle.size()] +
                   "|";
        }
        if (reported_cycles.insert(canon).second) {
          std::string path;
          for (const std::string& n : cycle) path += n + " -> ";
          path += e->to;
          const SourceFile& f = files_[static_cast<size_t>(e->site.file)];
          if (Strict(f)) {
            Add(RuleKind::kLockCycle, f, e->site.line,
                "lock acquisition cycle: " + path);
          }
        }
      } else if (color[e->to] == 0) {
        dfs(e->to);
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const std::string& n : nodes) {
    if (color[n] == 0) dfs(n);
  }

  // Hierarchy conformance, when a hierarchy file is declared.
  if (options_.hierarchy_file.empty()) return;
  std::ifstream in(options_.hierarchy_file);
  if (!in) return;
  std::map<std::string, int> rank;
  std::set<std::string> ordered;
  std::string line;
  int next_rank = 0;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string name, tag;
    if (!(ls >> name)) continue;
    rank[name] = next_rank++;
    if (ls >> tag && tag == "[ordered]") ordered.insert(name);
  }
  for (const auto& [key, e] : db_.edges) {
    (void)key;
    const SourceFile& f = files_[static_cast<size_t>(e.site.file)];
    if (!Strict(f)) continue;
    const std::string via =
        e.via.empty() ? "" : " (via call to " + e.via + "())";
    if (rank.count(e.from) == 0 || rank.count(e.to) == 0) {
      const std::string missing = rank.count(e.from) == 0 ? e.from : e.to;
      Add(RuleKind::kLockOrderViolation, f, e.site.line,
          "lock class " + missing + " is acquired nested" + via +
              " but is not declared in the lock hierarchy (" +
              options_.hierarchy_file + ")");
      continue;
    }
    if (e.from == e.to) {
      if (ordered.count(e.from) == 0) {
        Add(RuleKind::kLockOrderViolation, f, e.site.line,
            "self-nested acquisition of " + e.from + via +
                "; only [ordered] multi-instance locks may nest with "
                "themselves");
      }
      continue;
    }
    if (rank[e.from] > rank[e.to]) {
      Add(RuleKind::kLockOrderViolation, f, e.site.line,
          "acquisition order " + e.from + " -> " + e.to + via +
              " contradicts the declared hierarchy (" + e.to +
              " ranks above " + e.from + ")");
    }
  }
}

// ---------------------------------------------------------------------

LintReport Engine::Run() {
  for (size_t i = 0; i < files_.size(); ++i) ScanFile(static_cast<int>(i));
  for (const BodyJob& job : db_.bodies) AnalyzeBody(job);
  for (size_t i = 0; i < files_.size(); ++i) TokenRules(static_cast<int>(i));
  CatalogRules();
  LockGraphRules();

  report_.files_scanned = static_cast<int>(files_.size());
  std::sort(report_.findings.begin(), report_.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return report_;
}

}  // namespace

// ---------------------------------------------------------------------

Analyzer::Analyzer(AnalyzerOptions options) : options_(std::move(options)) {}

void Analyzer::AddFile(const std::string& path, const std::string& text) {
  files_.push_back(Lex(path, text));
}

LintReport Analyzer::Run() {
  Engine engine(options_, files_);
  LintReport report = engine.Run();
  lock_graph_dump_ = engine.lock_graph_dump();
  return report;
}

std::string Analyzer::DumpLockGraph() const { return lock_graph_dump_; }

}  // namespace dsflint
