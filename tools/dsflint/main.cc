// dsflint — the project-native static analyzer.
//
// Usage:
//   dsflint [flags] <path>...
//
// Paths may be files or directories (directories are walked recursively
// for *.h / *.cc). Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// Flags:
//   --rules=a,b,c       run only the named rules (default: all).
//   --hierarchy=FILE    declared lock hierarchy for the lock-order rule.
//   --exclude=SUBSTR    skip paths containing SUBSTR (repeatable).
//   --strict-dir=SUBSTR override the enforced-directory set (repeatable;
//                       files elsewhere still feed the database).
//   --dump-lock-graph   print the extracted lock acquisition graph and
//                       exit (findings still computed, not printed).
//   --list-rules        print the rule names and exit.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"

namespace {

const char* const kRuleNames[] = {
    "guarded-by",      "lock-order",     "discarded-status",
    "metric-catalog",  "spankind-catalog", "raw-page-io",
    "raw-syscall-io",  "check-on-fault-path", "no-naked-mutex",
};

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool Excluded(const std::string& path,
              const std::vector<std::string>& excludes) {
  for (const std::string& e : excludes) {
    if (path.find(e) != std::string::npos) return true;
  }
  return false;
}

int AddPath(dsflint::Analyzer& analyzer, const std::string& path,
            const std::vector<std::string>& excludes, int* added) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec) {
    std::cerr << "dsflint: cannot stat " << path << "\n";
    return 2;
  }
  std::vector<std::string> files;
  if (fs::is_directory(st)) {
    for (fs::recursive_directory_iterator it(path, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string p = it->path().generic_string();
      if ((HasSuffix(p, ".h") || HasSuffix(p, ".cc")) &&
          !Excluded(p, excludes)) {
        files.push_back(p);
      }
    }
  } else if (!Excluded(path, excludes)) {
    files.push_back(path);
  }
  std::sort(files.begin(), files.end());
  for (const std::string& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "dsflint: cannot read " << p << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    analyzer.AddFile(p, text.str());
    ++*added;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dsflint::AnalyzerOptions options;
  std::vector<std::string> excludes;
  std::vector<std::string> strict_dirs;
  std::vector<std::string> paths;
  bool dump_lock_graph = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rules=", 0) == 0) {
      std::istringstream ss(arg.substr(8));
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        if (!rule.empty()) options.rules.insert(rule);
      }
    } else if (arg.rfind("--hierarchy=", 0) == 0) {
      options.hierarchy_file = arg.substr(12);
    } else if (arg.rfind("--exclude=", 0) == 0) {
      excludes.push_back(arg.substr(10));
    } else if (arg.rfind("--strict-dir=", 0) == 0) {
      strict_dirs.push_back(arg.substr(13));
    } else if (arg == "--dump-lock-graph") {
      dump_lock_graph = true;
    } else if (arg == "--list-rules") {
      for (const char* r : kRuleNames) std::cout << r << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dsflint [--rules=a,b] [--hierarchy=FILE] "
                   "[--exclude=SUBSTR] [--strict-dir=SUBSTR] "
                   "[--dump-lock-graph] <path>...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dsflint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "dsflint: no paths given (try --help)\n";
    return 2;
  }
  if (!strict_dirs.empty()) options.strict_dirs = strict_dirs;

  dsflint::Analyzer analyzer(std::move(options));
  int added = 0;
  for (const std::string& p : paths) {
    const int rc = AddPath(analyzer, p, excludes, &added);
    if (rc != 0) return rc;
  }
  if (added == 0) {
    std::cerr << "dsflint: no .h/.cc files under the given paths\n";
    return 2;
  }

  const dsflint::LintReport report = analyzer.Run();
  if (dump_lock_graph) {
    std::cout << analyzer.DumpLockGraph();
    return report.ok() ? 0 : 1;
  }
  std::cout << report.ToString();
  return report.ok() ? 0 : 1;
}
