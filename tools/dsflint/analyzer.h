// dsflint's analysis passes: a scope/annotation database built from the
// token streams, body-level lock and field tracking, and the typed rule
// catalog (see report.h for the kinds and docs/ANALYSIS.md for the full
// catalog semantics).
//
// The analyzer is deliberately a *project-shape* checker, not a general
// C++ front end: it understands exactly the idioms this codebase uses —
// DSF_GUARDED_BY / DSF_REQUIRES annotations, dsf::MutexLock-family RAII
// guards, `mu.Lock()` manual holds, `if (mu.TryLock())` conditional
// holds, `Class::Method` out-of-line definitions — and stays silent
// where it cannot resolve a construct. Conservatism budget: a rule must
// run clean over the real tree with zero escapes it cannot justify, so
// unresolvable expressions are skipped, never guessed.

#ifndef DSF_TOOLS_DSFLINT_ANALYZER_H_
#define DSF_TOOLS_DSFLINT_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "report.h"

namespace dsflint {

struct AnalyzerOptions {
  // Rules to run; empty = all. Names as in RuleKindName (rule-kind
  // groups: "lock-order" enables both the hierarchy and cycle checks).
  std::set<std::string> rules;

  // Path to the declared lock hierarchy (see lock_hierarchy.txt). Empty
  // disables the hierarchy half of lock-order (cycle detection and
  // graph extraction still run).
  std::string hierarchy_file;

  // Directory substrings (matched against the scanned path) in which the
  // structural rules are ENFORCED: guarded-by, lock-order, raw-page-io,
  // discarded-status, no-naked-mutex, spankind-catalog. Files outside
  // still contribute to the database (class annotations, catalog
  // declarations, call summaries) but produce no findings for these
  // rules. metric-catalog is enforced over every scanned file.
  std::vector<std::string> strict_dirs = {"src/", "tools/"};

  // RawPage confinement: paths containing one of these are the storage
  // layer and may touch raw pages.
  std::vector<std::string> raw_page_dirs = {"src/storage/"};

  // Raw-syscall confinement: only the durable backend (and the temp-dir
  // test helper) may call the file I/O syscalls directly. Everything
  // else goes through StorageBackend, so fault injection, IoStats and
  // the kill-test write accounting can't be bypassed.
  std::vector<std::string> raw_syscall_dirs = {"src/storage/",
                                               "src/util/temp_dir"};

  // check-on-fault-path enforcement set (fault-reachable code).
  std::vector<std::string> fault_dirs = {"src/core/",   "src/storage/",
                                         "src/shard/",  "src/varsize/",
                                         "src/ingest/", "src/tune/"};

  // no-naked-mutex exemptions inside strict_dirs: the annotated wrapper
  // itself and the deadlock detector legitimately hold std primitives.
  std::vector<std::string> naked_mutex_exempt_dirs = {"src/util/"};

  // metric-catalog: files whose basename matches this declare the
  // catalog; raw string literals to FindOrCreate* are allowed only in
  // paths containing one of metric_free_dirs (the metrics module and its
  // own tests).
  std::string metric_catalog_basename = "metric_names.h";
  std::vector<std::string> metric_free_dirs = {"src/obs/"};
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options);

  // Adds one file's contents to the analysis set.
  void AddFile(const std::string& path, const std::string& text);

  // Runs every configured rule over the accumulated files and returns
  // the findings, sorted by (file, line).
  LintReport Run();

  // The statically extracted lock acquisition graph, one
  // "from -> to [site]" line per edge — for --dump-lock-graph and the
  // hierarchy-writing workflow in docs/ANALYSIS.md.
  std::string DumpLockGraph() const;

 private:
  struct Impl;
  AnalyzerOptions options_;
  std::vector<SourceFile> files_;
  std::string lock_graph_dump_;
};

}  // namespace dsflint

#endif  // DSF_TOOLS_DSFLINT_ANALYZER_H_
